package obs

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "job %s trace %s", r.PathValue("id"), TraceID(r.Context()))
	})
	mux.HandleFunc("POST /v1/fail", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
	})
	return mux
}

func TestMiddlewareTraceMintAndEcho(t *testing.T) {
	reg := NewRegistry()
	ts := httptest.NewServer(Middleware(reg, NopLogger(), newTestMux()))
	defer ts.Close()

	// No inbound trace: one is minted, echoed, and visible in-context.
	resp, err := http.Get(ts.URL + "/v1/jobs/j42")
	if err != nil {
		t.Fatal(err)
	}
	minted := resp.Header.Get(TraceHeader)
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if minted == "" || SanitizeTraceID(minted) == "" {
		t.Fatalf("minted trace %q invalid", minted)
	}
	if want := "trace " + minted; !strings.Contains(string(body[:n]), want) {
		t.Fatalf("handler saw %q, want %q", body[:n], want)
	}

	// A supplied well-formed trace passes through untouched.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/j42", nil)
	req.Header.Set(TraceHeader, "fleet-trace-1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != "fleet-trace-1" {
		t.Fatalf("trace echoed as %q, want fleet-trace-1", got)
	}

	// A hostile trace is replaced, not propagated.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/j42", nil)
	req.Header.Set(TraceHeader, `evil"header`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got == `evil"header` || got == "" {
		t.Fatalf("hostile trace handled as %q", got)
	}
}

func TestMiddlewareMetrics(t *testing.T) {
	reg := NewRegistry()
	ts := httptest.NewServer(Middleware(reg, nil, newTestMux()))
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/jobs/j1")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Post(ts.URL+"/v1/fail", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		// The route label is the mux pattern, so /v1/jobs/j1 does not
		// create its own label value.
		`mpstream_http_requests_total{code="200",route="GET /v1/jobs/{id}"} 3`,
		`mpstream_http_requests_total{code="400",route="POST /v1/fail"} 1`,
		`code="404",route="unmatched"`,
		`mpstream_http_request_seconds_count{route="GET /v1/jobs/{id}"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	if got := reg.Gauge("mpstream_http_inflight_requests", "").Value(); got != 0 {
		t.Errorf("inflight gauge = %v after requests drained, want 0", got)
	}
	ValidateExposition(t, out)
}

func TestMiddlewareFlusherPassthrough(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stream", func(w http.ResponseWriter, _ *http.Request) {
		if _, ok := w.(http.Flusher); !ok {
			http.Error(w, "no flusher", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, "ok")
	})
	ts := httptest.NewServer(Middleware(NewRegistry(), nil, mux))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streaming handler lost http.Flusher through the middleware: %d", resp.StatusCode)
	}
}

func TestRegistryHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body %q", rec.Body.String())
	}
}
