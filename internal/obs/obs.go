// Package obs is the service's zero-dependency telemetry layer:
// a metrics registry (atomic counters, gauges and fixed-bucket
// histograms rendered in the Prometheus text exposition format),
// structured logging helpers over log/slog, per-job trace IDs
// propagated coordinator→worker through an HTTP header, and the
// HTTP middleware that ties the three together.
//
// The registry is deliberately small: get-or-create instruments keyed
// by (family name, label set), plus scrape-time collectors for values
// that already live elsewhere (cache stats, registry snapshots, queue
// depths) and would be silly to mirror into live instruments. Every
// instrument is safe for concurrent use, and every instrument method
// is a no-op on a nil receiver — callers thread a nil *Registry to
// run fully uninstrumented, which is how the instrumentation-overhead
// benchmark gets its baseline.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DurationBuckets is the shared histogram layout for request and job
// latencies, spanning sub-millisecond HTTP handling to ten-minute
// sweep jobs.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// EvalBuckets is the histogram layout for single simulator
// evaluations, which run from tens of microseconds (a cached-size
// kernel) to tens of seconds (a gigabyte array swept serially).
var EvalBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (negative to subtract). No-op on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed ascending buckets (an
// implicit +Inf bucket catches the tail) and tracks their sum.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram builds a standalone histogram over the given ascending
// upper bounds; use Registry.Histogram for registered ones. Shared
// instances (e.g. process-global simulator stats) can later be adopted
// into a registry with AddHistogram.
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.buckets = make([]atomic.Uint64, len(h.bounds)+1)
	return h
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the total of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// BucketCounts returns the cumulative per-bucket counts, one entry per
// bound plus the +Inf tail — the exposition-format shape.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.buckets))
	cum := uint64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

// Sample is one scrape-time value a collector emits: a counter or
// gauge with optional labels, grouped into the named family.
type Sample struct {
	Name   string
	Help   string
	Kind   string   // "counter" or "gauge"
	Labels []string // alternating key, value
	Value  float64
}

// metric is anything a family can render at scrape time.
type metric interface {
	writeSamples(w io.Writer, name, labels string)
}

func (c *Counter) writeSamples(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, strconv.FormatUint(c.Value(), 10))
}

func (g *Gauge) writeSamples(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.Value()))
}

func (h *Histogram) writeSamples(w io.Writer, name, labels string) {
	cum := h.BucketCounts()
	for i, bound := range h.bounds {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(labels, formatFloat(bound)), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(labels, "+Inf"), cum[len(cum)-1])
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}

// funcMetric renders a callback's value at scrape time.
type funcMetric struct {
	fn func() float64
}

func (f funcMetric) writeSamples(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(f.fn()))
}

// family is one metric name with its help, type and labeled children.
type family struct {
	name, help, kind string
	metrics          map[string]metric // rendered label string -> instrument
}

// Registry holds metric families and scrape-time collectors. A nil
// *Registry is valid: every method no-ops (returning nil instruments,
// themselves no-ops), so instrumented code paths need no nil checks.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	order      []string // registration order, for stable-but-resorted output
	collectors []func(emit func(Sample))
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns (creating if needed) the family and the slot for the
// given label set. Requires a non-nil registry.
func (r *Registry) lookup(name, help, kind string, labels []string) (*family, string) {
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, metrics: make(map[string]metric)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	return f, ls
}

// Counter returns the counter for name and the given label pairs,
// creating it on first use. help is recorded on creation only.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	f, ls := r.lookup(name, help, "counter", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := f.metrics[ls]; ok {
		c, _ := m.(*Counter)
		return c
	}
	c := &Counter{}
	f.metrics[ls] = c
	return c
}

// Gauge returns the gauge for name and the given label pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	f, ls := r.lookup(name, help, "gauge", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := f.metrics[ls]; ok {
		g, _ := m.(*Gauge)
		return g
	}
	g := &Gauge{}
	f.metrics[ls] = g
	return g
}

// Histogram returns the histogram for name and the given label pairs,
// creating it over bounds on first use (later calls reuse the first
// creation's bounds).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	f, ls := r.lookup(name, help, "histogram", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := f.metrics[ls]; ok {
		h, _ := m.(*Histogram)
		return h
	}
	h := NewHistogram(bounds)
	f.metrics[ls] = h
	return h
}

// AddHistogram adopts an existing (possibly shared, process-global)
// histogram into the registry under name.
func (r *Registry) AddHistogram(name, help string, h *Histogram, labels ...string) {
	if r == nil || h == nil {
		return
	}
	f, ls := r.lookup(name, help, "histogram", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f.metrics[ls] = h
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time — for values that already live elsewhere (queue lengths,
// channel capacities).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	f, ls := r.lookup(name, help, "gauge", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f.metrics[ls] = funcMetric{fn: fn}
}

// CounterFunc registers a counter read from fn at scrape time. fn must
// be monotonically non-decreasing (e.g. backed by an atomic counter).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	f, ls := r.lookup(name, help, "counter", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f.metrics[ls] = funcMetric{fn: fn}
}

// Collect registers a scrape-time collector: fn is invoked on every
// exposition and emits samples for values with dynamic label sets
// (per-worker load, jobs by state) that would churn as live
// instruments.
func (r *Registry) Collect(fn func(emit func(Sample))) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// renderedSample pairs a label string with pre-rendered exposition
// lines, for sorting within a family.
type renderedSample struct {
	labels string
	text   string
}

// WritePrometheus renders every family — registered instruments and
// collector output merged by name — in the Prometheus text exposition
// format (version 0.0.4), families sorted by name and samples sorted
// by label string.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	var collectors []func(emit func(Sample))
	collectors = append(collectors, r.collectors...)
	r.mu.Unlock()

	// Collector samples land in a shadow structure merged under the
	// family name; collectors run without the registry lock so they can
	// safely read other locked state.
	collected := make(map[string]*struct {
		help, kind string
		samples    []Sample
	})
	var collectedOrder []string
	for _, fn := range collectors {
		fn(func(s Sample) {
			cf, ok := collected[s.Name]
			if !ok {
				cf = &struct {
					help, kind string
					samples    []Sample
				}{help: s.Help, kind: s.Kind}
				collected[s.Name] = cf
				collectedOrder = append(collectedOrder, s.Name)
			}
			cf.samples = append(cf.samples, s)
		})
	}
	for _, name := range collectedOrder {
		r.mu.Lock()
		_, registered := r.families[name]
		r.mu.Unlock()
		if !registered {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	defer bw.Flush()
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		var help, kind string
		var rendered []renderedSample
		if f != nil {
			help, kind = f.help, f.kind
			for ls, m := range f.metrics {
				var sb strings.Builder
				m.writeSamples(&sb, name, ls)
				rendered = append(rendered, renderedSample{labels: ls, text: sb.String()})
			}
		}
		r.mu.Unlock()
		if cf := collected[name]; cf != nil {
			if help == "" {
				help, kind = cf.help, cf.kind
			}
			for _, s := range cf.samples {
				ls := labelString(s.Labels)
				var sb strings.Builder
				if s.Kind == "counter" {
					fmt.Fprintf(&sb, "%s%s %s\n", name, ls, strconv.FormatUint(uint64(s.Value), 10))
				} else {
					fmt.Fprintf(&sb, "%s%s %s\n", name, ls, formatFloat(s.Value))
				}
				rendered = append(rendered, renderedSample{labels: ls, text: sb.String()})
			}
		}
		if len(rendered) == 0 {
			continue
		}
		sort.Slice(rendered, func(i, j int) bool { return rendered[i].labels < rendered[j].labels })
		if help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, help)
		}
		if kind != "" {
			fmt.Fprintf(bw, "# TYPE %s %s\n", name, kind)
		}
		for _, rs := range rendered {
			bw.WriteString(rs.text)
		}
	}
}

// Handler serves the exposition — the GET /v1/metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// labelString renders alternating key/value pairs as a canonical
// `{k="v",...}` block, keys sorted, values escaped; empty pairs render
// as "".
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p.v))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// withLE folds the histogram bucket's le label into an existing label
// block.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// formatFloat renders a float the exposition format accepts, with
// integral values kept short.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
