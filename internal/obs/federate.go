package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Metrics federation: the coordinator scrapes every live worker's
// /v1/metrics and re-renders the fleet as ONE exposition, each sample
// gaining a `worker` label, each family's HELP/TYPE emitted exactly
// once — so a single Prometheus scrape of GET /v1/cluster/metrics
// observes the whole fleet without per-worker scrape configs.

// Exposition is one node's scrape: its worker label, the Prometheus
// text body, and the scrape error if the fetch failed (the body is
// then empty and the node reports mpstream_federation_up 0).
type Exposition struct {
	Worker string
	Body   string
	Err    error
}

// MergeExpositions merges per-node scrapes into one exposition.
// Every sample line gains worker="<id>"; a pre-existing worker label
// (the coordinator's own fleet gauges describe its peers) is renamed
// to peer="..." so label names stay unique. A synthesized
// mpstream_federation_up gauge reports scrape success per node.
func MergeExpositions(parts []Exposition) string {
	type fam struct {
		name, help, kind string
		samples          []string
	}
	fams := make(map[string]*fam)
	get := func(name string) *fam {
		f, ok := fams[name]
		if !ok {
			f = &fam{name: name}
			fams[name] = f
		}
		return f
	}
	for _, p := range parts {
		hists := make(map[string]bool)
		for _, line := range strings.Split(p.Body, "\n") {
			switch {
			case line == "":
			case strings.HasPrefix(line, "# HELP "):
				if name, rest, ok := strings.Cut(line[len("# HELP "):], " "); ok {
					if f := get(name); f.help == "" {
						f.help = rest
					}
				}
			case strings.HasPrefix(line, "# TYPE "):
				if name, kind, ok := strings.Cut(line[len("# TYPE "):], " "); ok {
					if f := get(name); f.kind == "" {
						f.kind = kind
					}
					if kind == "histogram" {
						hists[name] = true
					}
				}
			case strings.HasPrefix(line, "#"):
			default:
				name := line
				if i := strings.IndexAny(line, "{ "); i >= 0 {
					name = line[:i]
				}
				base := name
				for _, suf := range []string{"_bucket", "_sum", "_count"} {
					if t := strings.TrimSuffix(name, suf); t != name && hists[t] {
						base = t
						break
					}
				}
				f := get(base)
				f.samples = append(f.samples, injectWorkerLabel(line, p.Worker))
			}
		}
	}
	up := get("mpstream_federation_up")
	up.help = "Whether the federation scrape of each node succeeded."
	up.kind = "gauge"
	for _, p := range parts {
		v := "1"
		if p.Err != nil {
			v = "0"
		}
		up.samples = append(up.samples,
			fmt.Sprintf(`mpstream_federation_up{worker="%s"} %s`, escapeLabel(p.Worker), v))
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		if len(f.samples) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		if f.kind != "" {
			fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		}
		for _, s := range f.samples {
			b.WriteString(s)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// injectWorkerLabel rewrites one sample line to carry worker="id" as
// its first label, renaming any pre-existing worker label to peer.
func injectWorkerLabel(line, worker string) string {
	lab := `worker="` + escapeLabel(worker) + `"`
	brace := strings.IndexByte(line, '{')
	sp := strings.IndexByte(line, ' ')
	if brace == -1 || (sp != -1 && sp < brace) {
		if sp == -1 {
			return line
		}
		return line[:sp] + "{" + lab + "}" + line[sp:]
	}
	// Label values may themselves contain '}' (route patterns like
	// /v1/jobs/{id}); the block's closing brace is the LAST '}' since
	// only the numeric value follows it.
	end := strings.LastIndexByte(line, '}')
	if end < brace {
		return line
	}
	inner := renameLabel(line[brace+1:end], "worker", "peer")
	if inner == "" {
		return line[:brace+1] + lab + line[end:]
	}
	return line[:brace+1] + lab + "," + inner + line[end:]
}

// renameLabel renames label `from` to `to` within a label block body,
// splitting on top-level commas (quote- and escape-aware).
func renameLabel(inner, from, to string) string {
	if !strings.Contains(inner, from+`="`) {
		return inner
	}
	var out []string
	for _, kv := range splitLabels(inner) {
		if strings.HasPrefix(kv, from+`="`) {
			kv = to + kv[len(from):]
		}
		out = append(out, kv)
	}
	return strings.Join(out, ",")
}

// splitLabels splits `k1="v1",k2="v2"` on commas outside quotes.
func splitLabels(s string) []string {
	var (
		out     []string
		start   int
		inQuote bool
		escaped bool
	)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return out
}
