package obs

import (
	"compress/gzip"
	"net/http"
	"strings"
)

// gzipWriter routes the body through a gzip stream while headers and
// status pass straight through.
type gzipWriter struct {
	http.ResponseWriter
	gz *gzip.Writer
}

func (w gzipWriter) Write(b []byte) (int, error) { return w.gz.Write(b) }

// GzipHandler compresses responses when the client advertises
// Accept-Encoding: gzip. Scrapes of a large fleet exposition are
// chatty and almost pure text — compression is nearly free bandwidth.
func GzipHandler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Add("Vary", "Accept-Encoding")
		if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			next.ServeHTTP(w, r)
			return
		}
		w.Header().Set("Content-Encoding", "gzip")
		gz := gzip.NewWriter(w)
		defer gz.Close()
		next.ServeHTTP(gzipWriter{ResponseWriter: w, gz: gz}, r)
	})
}
