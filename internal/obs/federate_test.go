package obs

import (
	"errors"
	"strings"
	"testing"
)

func TestMergeExpositions(t *testing.T) {
	w0 := Exposition{Worker: "w0", Body: "" +
		"# HELP mpstream_jobs_total Jobs.\n" +
		"# TYPE mpstream_jobs_total counter\n" +
		"mpstream_jobs_total{kind=\"run\"} 3\n" +
		"# HELP mpstream_job_duration_seconds Run duration.\n" +
		"# TYPE mpstream_job_duration_seconds histogram\n" +
		"mpstream_job_duration_seconds_bucket{kind=\"run\",le=\"1\"} 2\n" +
		"mpstream_job_duration_seconds_bucket{kind=\"run\",le=\"+Inf\"} 3\n" +
		"mpstream_job_duration_seconds_sum{kind=\"run\"} 1.5\n" +
		"mpstream_job_duration_seconds_count{kind=\"run\"} 3\n"}
	w1 := Exposition{Worker: "w1", Body: "" +
		"# HELP mpstream_jobs_total Jobs.\n" +
		"# TYPE mpstream_jobs_total counter\n" +
		"mpstream_jobs_total{kind=\"run\"} 8\n" +
		"# HELP mpstream_queue_depth Queue.\n" +
		"# TYPE mpstream_queue_depth gauge\n" +
		"mpstream_queue_depth 0\n"}
	// The coordinator's own fleet gauges already carry a worker label
	// naming peers — it must be renamed, not collide.
	coord := Exposition{Worker: "coordinator", Body: "" +
		"# HELP mpstream_cluster_worker_inflight Shards in flight per worker.\n" +
		"# TYPE mpstream_cluster_worker_inflight gauge\n" +
		"mpstream_cluster_worker_inflight{worker=\"w0\"} 1\n" +
		// Route label values legitimately contain '}' characters.
		"# HELP mpstream_http_requests_total Requests.\n" +
		"# TYPE mpstream_http_requests_total counter\n" +
		"mpstream_http_requests_total{route=\"/v1/jobs/{id}\",code=\"200\"} 7\n"}
	dead := Exposition{Worker: "w9", Err: errors.New("connection refused")}

	merged := MergeExpositions([]Exposition{coord, w0, w1, dead})

	for _, want := range []string{
		`mpstream_jobs_total{worker="w0",kind="run"} 3`,
		`mpstream_jobs_total{worker="w1",kind="run"} 8`,
		`mpstream_queue_depth{worker="w1"} 0`,
		`mpstream_job_duration_seconds_bucket{worker="w0",kind="run",le="+Inf"} 3`,
		`mpstream_job_duration_seconds_sum{worker="w0",kind="run"} 1.5`,
		`mpstream_cluster_worker_inflight{worker="coordinator",peer="w0"} 1`,
		`mpstream_http_requests_total{worker="coordinator",route="/v1/jobs/{id}",code="200"} 7`,
		`mpstream_federation_up{worker="w0"} 1`,
		`mpstream_federation_up{worker="w9"} 0`,
	} {
		if !strings.Contains(merged, want+"\n") {
			t.Errorf("merged exposition missing %q:\n%s", want, merged)
		}
	}

	// One HELP/TYPE pair per family even though two workers reported it.
	if n := strings.Count(merged, "# TYPE mpstream_jobs_total counter"); n != 1 {
		t.Errorf("TYPE mpstream_jobs_total emitted %d times, want 1", n)
	}
	// Histogram child samples must not grow their own TYPE lines.
	if strings.Contains(merged, "# TYPE mpstream_job_duration_seconds_bucket") {
		t.Error("histogram _bucket treated as its own family")
	}

	// The merged output is itself a well-formed exposition (the
	// federation endpoint serves exactly this).
	ValidateExposition(t, merged)
}

func TestMergeExpositionsEmpty(t *testing.T) {
	merged := MergeExpositions(nil)
	if !strings.Contains(merged, "# TYPE mpstream_federation_up gauge") {
		// Zero parts still render the up-family header block... or nothing
		// at all; either way the output must stay valid.
		if merged != "" {
			ValidateExposition(t, merged)
		}
	}
}
