package obs

import (
	"sync/atomic"
	"time"
)

// Simulator hot-path telemetry. The counters are process-global
// atomics rather than registry instruments: the sim layers (dram,
// core) stay free of registry plumbing and pay one atomic add per
// coarse unit (a whole Service call, a whole evaluation), and any
// number of registries expose the shared values through
// RegisterSimMetrics.
var (
	simDRAMRequests atomic.Uint64 // DRAM transactions serviced
	simEvals        atomic.Uint64 // core evaluations completed
	simEvalTick     atomic.Uint64 // sampling clock for evalSeconds

	// evalSeconds is the sampled per-evaluation duration histogram.
	evalSeconds = NewHistogram(EvalBuckets)
)

// evalSampleMask makes EvalStart time 1 in 16 evaluations — enough
// resolution for a latency distribution, cheap enough (one atomic add
// and a mask) to leave on the hot path unconditionally.
const evalSampleMask = 15

// AddDRAMRequests accumulates serviced DRAM transactions; the dram
// model calls it once per Service run with the run's transaction
// count.
func AddDRAMRequests(n uint64) {
	if n > 0 {
		simDRAMRequests.Add(n)
	}
}

// EvalStart begins one (possibly sampled) evaluation timing: the zero
// time means this evaluation is not sampled and EvalDone only counts
// it.
func EvalStart() time.Time {
	if simEvalTick.Add(1)&evalSampleMask != 0 {
		return time.Time{}
	}
	return time.Now()
}

// EvalDone completes one evaluation: always counted, and its duration
// observed when EvalStart sampled it.
func EvalDone(start time.Time) {
	simEvals.Add(1)
	if !start.IsZero() {
		evalSeconds.Observe(time.Since(start).Seconds())
	}
}

// SimStats snapshots the global simulator counters (tests and
// debugging; scraping goes through RegisterSimMetrics).
func SimStats() (dramRequests, evals uint64) {
	return simDRAMRequests.Load(), simEvals.Load()
}

// RegisterSimMetrics exposes the process-global simulator telemetry
// through a registry.
func RegisterSimMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.CounterFunc("mpstream_sim_dram_requests_total",
		"DRAM transactions serviced by the memory model.",
		func() float64 { return float64(simDRAMRequests.Load()) })
	r.CounterFunc("mpstream_sim_evaluations_total",
		"Simulator evaluations (core runs) completed.",
		func() float64 { return float64(simEvals.Load()) })
	r.AddHistogram("mpstream_sim_evaluation_seconds",
		"Sampled per-evaluation wall time in seconds (1 in 16 evaluations).",
		evalSeconds)
}
