package obs

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// span builds a finished test span with millisecond-scale offsets from
// a fixed epoch so tree math is deterministic.
func span(trace, id, parent, name, origin string, startMS, durMS int, attrs ...string) Span {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	sp := Span{
		Trace:    trace,
		ID:       id,
		Parent:   parent,
		Name:     name,
		Origin:   origin,
		Start:    epoch.Add(time.Duration(startMS) * time.Millisecond),
		Duration: time.Duration(durMS) * time.Millisecond,
	}
	for i := 0; i+1 < len(attrs); i += 2 {
		if sp.Attrs == nil {
			sp.Attrs = map[string]string{}
		}
		sp.Attrs[attrs[i]] = attrs[i+1]
	}
	return sp
}

func TestSpanStoreRingBounds(t *testing.T) {
	s := NewSpanStore(4)
	for i := 0; i < 10; i++ {
		s.add(span("t", fmt.Sprintf("s%d", i), "", "n", "", i, 1))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (bounded ring)", s.Len())
	}
	got := s.Trace("t")
	if len(got) != 4 {
		t.Fatalf("Trace returned %d spans, want 4", len(got))
	}
	// Recording order is preserved and only the newest four survive.
	for i, sp := range got {
		if want := fmt.Sprintf("s%d", i+6); sp.ID != want {
			t.Errorf("span[%d].ID = %s, want %s", i, sp.ID, want)
		}
	}
	if s.drops != 6 {
		t.Errorf("drops = %d, want 6", s.drops)
	}
}

func TestStartSpanNilSafety(t *testing.T) {
	// No recorder in context: every handle is nil and every call a no-op.
	ctx, sp := StartSpan(context.Background(), "noop")
	if sp != nil {
		t.Fatal("StartSpan without recorder returned a live span")
	}
	sp.SetAttr("k", "v")
	sp.End()
	sp.End()
	if id := sp.ID(); id != "" {
		t.Errorf("nil span ID = %q, want empty", id)
	}
	if p := SpanParent(ctx); p != "" {
		t.Errorf("nil span leaked a parent %q into ctx", p)
	}
	var r *Recorder
	if r.Origin() != "" || r.Spans("x") != nil {
		t.Error("nil recorder must report nothing")
	}
	r.Ingest(span("t", "a", "", "n", "", 0, 1)) // must not panic
}

func TestStartSpanRecordsTree(t *testing.T) {
	rec := NewRecorder("w7", 64)
	ctx := WithRecorder(WithTrace(context.Background(), "tr1"), rec)
	ctx, root := StartSpan(ctx, "job", "kind", "run")
	_, child := StartSpan(ctx, "job.run")
	child.SetAttr("status", "done")
	child.End()
	child.SetAttr("late", "ignored") // after End: dropped
	root.End()
	root.End() // idempotent: recorded once

	spans := rec.Spans("tr1")
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Recording order is end order: child first.
	if spans[0].Name != "job.run" || spans[1].Name != "job" {
		t.Fatalf("recorded names %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Errorf("child parent %q != root ID %q", spans[0].Parent, spans[1].ID)
	}
	if spans[0].Origin != "w7" || spans[1].Origin != "w7" {
		t.Errorf("origins = %q, %q, want w7", spans[0].Origin, spans[1].Origin)
	}
	if spans[0].Attrs["status"] != "done" {
		t.Errorf("child attrs = %v", spans[0].Attrs)
	}
	if _, ok := spans[0].Attrs["late"]; ok {
		t.Error("SetAttr after End mutated the recorded span")
	}
	if spans[1].Attrs["kind"] != "run" {
		t.Errorf("root attrs = %v", spans[1].Attrs)
	}
	if loc := spans[1].Start.Location(); loc != time.UTC {
		t.Errorf("recorded start in %v, want UTC", loc)
	}
}

func TestSpanIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := newSpanID()
		if seen[id] {
			t.Fatalf("duplicate span ID %s after %d mints", id, i)
		}
		seen[id] = true
	}
}

// testTree is a two-process job trace: root job on the coordinator
// with queue+run children, the run fanning out one shard per worker,
// each shard carrying a worker-origin eval span.
func testTree() []Span {
	return []Span{
		span("t", "root", "", "job", "coordinator", 0, 100),
		span("t", "q", "root", "job.queue", "coordinator", 0, 10),
		span("t", "run", "root", "job.run", "coordinator", 10, 90),
		span("t", "sh0", "run", "shard.execute", "coordinator", 12, 40, "state", "done", "shard", "0"),
		span("t", "sh1", "run", "shard.execute", "coordinator", 12, 80, "state", "done", "shard", "1"),
		span("t", "ev0", "sh0", "run.eval", "w0", 14, 30),
		span("t", "ev1", "sh1", "run.eval", "w1", 14, 70),
		// A different trace's span must never leak into the tree.
		span("other", "x", "", "job", "coordinator", 0, 5),
	}
}

func TestDescendantsFiltersToSubtree(t *testing.T) {
	spans := testTree()
	got := Descendants(spans, "root")
	if len(got) != 7 {
		t.Fatalf("Descendants kept %d spans, want 7", len(got))
	}
	for _, sp := range got {
		if sp.Trace != "t" {
			t.Errorf("foreign span %s in subtree", sp.ID)
		}
	}
	if got := Descendants(spans, "sh1"); len(got) != 2 {
		t.Errorf("Descendants(sh1) = %d spans, want 2", len(got))
	}
	// A parent cycle must not hang the walk.
	cyc := []Span{
		span("t", "a", "b", "x", "", 0, 1),
		span("t", "b", "a", "y", "", 0, 1),
	}
	if got := Descendants(cyc, "zzz"); len(got) != 0 {
		t.Errorf("cyclic spans reached an absent root: %v", got)
	}
}

func TestBuildTreeAndCriticalPath(t *testing.T) {
	spans := Descendants(testTree(), "root")
	roots := BuildTree(spans)
	if len(roots) != 1 || roots[0].ID != "root" {
		t.Fatalf("roots = %+v, want single job root", roots)
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("root has %d children, want 2 (queue, run)", len(roots[0].Children))
	}
	// Children sort by start: queue before run.
	if roots[0].Children[0].Name != "job.queue" || roots[0].Children[1].Name != "job.run" {
		t.Errorf("child order = %s, %s", roots[0].Children[0].Name, roots[0].Children[1].Name)
	}

	// The critical path descends into the latest-ending child at each
	// level: job → run → shard 1 → its eval.
	path := CriticalPath(roots[0])
	var names []string
	for _, st := range path {
		names = append(names, st.Name)
	}
	want := []string{"job", "job.run", "shard.execute", "run.eval"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("critical path = %v, want %v", names, want)
	}
	if path[2].Attrs["shard"] != "1" {
		t.Errorf("critical shard = %v, want shard 1 (the slow one)", path[2].Attrs)
	}

	// An orphan parent (still-running ancestor) becomes a root.
	orphans := BuildTree([]Span{span("t", "c", "missing", "x", "", 0, 1)})
	if len(orphans) != 1 {
		t.Errorf("orphan roots = %d, want 1", len(orphans))
	}
}

func TestSummarizeAndTraceView(t *testing.T) {
	spans := Descendants(testTree(), "root")
	sum := Summarize(spans, "root")
	if sum == nil {
		t.Fatal("Summarize returned nil")
	}
	if sum.WallMS != 100 || sum.QueueMS != 10 || sum.RunMS != 90 || sum.Spans != 7 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.SlowestShard == nil || sum.SlowestShard.Attrs["shard"] != "1" {
		t.Errorf("slowest shard = %+v, want shard 1", sum.SlowestShard)
	}

	tv := NewTraceView("job-1", "t", spans, "root")
	if tv.SpanCount != 7 || tv.WallMS != 100 {
		t.Errorf("view = span_count %d wall %v", tv.SpanCount, tv.WallMS)
	}
	// Queue [0,10) and run [10,100) abut: full coverage.
	if tv.Coverage < 0.999 || tv.Coverage > 1.001 {
		t.Errorf("coverage = %v, want ~1.0", tv.Coverage)
	}
	if strings.Join(tv.Origins, ",") != "coordinator,w0,w1" {
		t.Errorf("origins = %v", tv.Origins)
	}
	if len(tv.CriticalPath) == 0 {
		t.Error("view has no critical path")
	}
	// The view round-trips through JSON (the endpoint contract).
	b, err := json.Marshal(tv)
	if err != nil {
		t.Fatal(err)
	}
	var back TraceView
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.SpanCount != tv.SpanCount || len(back.Roots) != 1 {
		t.Errorf("round-trip view = %+v", back)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, Descendants(testTree(), "root")); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	procs := map[any]int{} // process_name metadata value → pid
	complete := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				procs[ev.Args["name"]] = ev.PID
			}
		case "X":
			complete++
			if ev.TS < 0 || ev.Dur <= 0 || ev.PID == 0 || ev.TID == 0 {
				t.Errorf("bad complete event %+v", ev)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != 7 {
		t.Errorf("%d complete events, want 7", complete)
	}
	for _, origin := range []string{"coordinator", "w0", "w1"} {
		if _, ok := procs[origin]; !ok {
			t.Errorf("origin %s missing a process row (have %v)", origin, procs)
		}
	}
	// The two overlapping shards of the coordinator must land in
	// different lanes of the same process.
	lanes := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "shard.execute" {
			lanes[ev.TID] = true
		}
	}
	if len(lanes) != 2 {
		t.Errorf("overlapping shards packed into %d lanes, want 2", len(lanes))
	}

	// Zero spans still renders a valid document.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Errorf("empty trace = %s", buf.String())
	}
}

func TestWriteTimeline(t *testing.T) {
	tv := NewTraceView("job-1", "t", Descendants(testTree(), "root"), "root")
	var buf bytes.Buffer
	WriteTimeline(&buf, tv)
	out := buf.String()
	for _, want := range []string{"job-1", "job.run", "shard.execute", "critical path", "w1"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	WriteTimeline(&buf, nil)
	if !strings.Contains(buf.String(), "no spans") {
		t.Errorf("nil view timeline = %q", buf.String())
	}
}

func TestGzipHandler(t *testing.T) {
	payload := strings.Repeat("mpstream_metric 1\n", 200)
	h := GzipHandler(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, payload)
	}))

	// Client advertises gzip: body comes back compressed.
	req := httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if got := rr.Header().Get("Content-Encoding"); got != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", got)
	}
	if rr.Header().Get("Vary") != "Accept-Encoding" {
		t.Errorf("Vary = %q", rr.Header().Get("Vary"))
	}
	if rr.Body.Len() >= len(payload) {
		t.Errorf("compressed body (%d bytes) not smaller than payload (%d)", rr.Body.Len(), len(payload))
	}
	gz, err := gzip.NewReader(rr.Body)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != payload {
		t.Error("gzip round-trip corrupted the body")
	}

	// No Accept-Encoding: identity body.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	if rr.Header().Get("Content-Encoding") != "" {
		t.Error("uncompressed response carries Content-Encoding")
	}
	if rr.Body.String() != payload {
		t.Error("identity body mangled")
	}
}
