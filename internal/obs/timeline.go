package obs

import (
	"fmt"
	"io"
	"strings"
)

// WriteTimeline renders a trace view as an indented text timeline for
// the CLIs' -trace flag: per-span offset and duration, origin tags
// for remote spans, then the critical path and slowest shard.
func WriteTimeline(w io.Writer, tv *TraceView) {
	if tv == nil || len(tv.Roots) == 0 {
		fmt.Fprintln(w, "trace: no spans recorded")
		return
	}
	fmt.Fprintf(w, "trace %s", tv.Trace)
	if tv.Job != "" {
		fmt.Fprintf(w, " job %s", tv.Job)
	}
	fmt.Fprintf(w, ": %d spans, wall %.1fms, coverage %.1f%%\n",
		tv.SpanCount, tv.WallMS, tv.Coverage*100)
	t0 := tv.Roots[0].Start
	for _, r := range tv.Roots {
		if r.Start.Before(t0) {
			t0 = r.Start
		}
	}
	// Deep per-point/rung listings would drown the terminal; cap the
	// children printed per node and summarize the remainder.
	const maxChildren = 12
	var walk func(n *TraceNode, depth int)
	walk = func(n *TraceNode, depth int) {
		off := float64(n.Start.Sub(t0).Microseconds()) / 1000
		dur := float64(n.Duration.Microseconds()) / 1000
		line := fmt.Sprintf("%9.1fms %s%s %.1fms", off, strings.Repeat("  ", depth), n.Name, dur)
		if n.Origin != "" {
			line += " @" + n.Origin
		}
		if keys := describeAttrs(n.Attrs); keys != "" {
			line += " {" + keys + "}"
		}
		fmt.Fprintln(w, line)
		kids := n.Children
		if len(kids) > maxChildren {
			fmt.Fprintf(w, "%9s %s… %d of %d children shown\n",
				"", strings.Repeat("  ", depth+1), maxChildren, len(kids))
			kids = kids[:maxChildren]
		}
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	for _, r := range tv.Roots {
		walk(r, 0)
	}
	if len(tv.CriticalPath) > 0 {
		var parts []string
		for _, s := range tv.CriticalPath {
			p := fmt.Sprintf("%s %.1fms", s.Name, s.DurMS)
			if s.Origin != "" {
				p += " @" + s.Origin
			}
			parts = append(parts, p)
		}
		fmt.Fprintf(w, "critical path: %s\n", strings.Join(parts, " → "))
	}
	if s := tv.SlowestShard; s != nil {
		fmt.Fprintf(w, "slowest shard: %s shard=%s attempt=%s %.1fms @%s\n",
			s.Name, s.Attrs["shard"], s.Attrs["attempt"], s.DurMS, s.Origin)
	}
}

// describeAttrs renders a handful of interesting attrs compactly.
func describeAttrs(attrs map[string]string) string {
	var parts []string
	for _, k := range []string{"kind", "status", "state", "shard", "worker", "attempt", "lost", "error"} {
		if v, ok := attrs[k]; ok {
			parts = append(parts, k+"="+v)
		}
	}
	return strings.Join(parts, " ")
}
