package runstate_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mpstream/internal/runstate"
)

func TestFromErr(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{context.Canceled, runstate.Canceled},
		{context.DeadlineExceeded, runstate.Deadline},
		{fmt.Errorf("wrap: %w", context.Canceled), runstate.Canceled},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), runstate.Deadline},
		{errors.New("backend exploded"), ""},
	}
	for _, c := range cases {
		if got := runstate.FromErr(c.err); got != c.want {
			t.Errorf("FromErr(%v) = %q, want %q", c.err, got, c.want)
		}
		if got := runstate.Stopped(c.err); got != (c.want != "") {
			t.Errorf("Stopped(%v) = %v", c.err, got)
		}
	}
}

func TestFromContext(t *testing.T) {
	if got := runstate.FromContext(context.Background()); got != "" {
		t.Errorf("live context = %q, want empty", got)
	}
	if got := runstate.FromContext(nil); got != "" {
		t.Errorf("nil context = %q, want empty", got)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := runstate.FromContext(ctx); got != runstate.Canceled {
		t.Errorf("canceled context = %q, want %q", got, runstate.Canceled)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if got := runstate.FromContext(dctx); got != runstate.Deadline {
		t.Errorf("expired context = %q, want %q", got, runstate.Deadline)
	}
}
