// Package runstate defines the canonical partial-result states shared
// by every layer of the context-aware execution pipeline. When a
// context cancels a run mid-flight — a client deleted its job, a
// per-job deadline expired, a CLI got Ctrl-C — the layer that stopped
// tags whatever it collected with one of these states, so the service,
// the CLIs and the facades all spell "stopped early" the same way.
package runstate

import (
	"context"
	"errors"
)

// Canonical stop states. The empty string means "ran to completion".
const (
	// Canceled marks work stopped by an explicit cancellation.
	Canceled = "canceled"
	// Deadline marks work stopped by an expired deadline.
	Deadline = "deadline"
)

// FromErr classifies an error chain: Deadline for
// context.DeadlineExceeded, Canceled for context.Canceled, "" for nil
// or anything else (a real failure is not a stop state).
func FromErr(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return Deadline
	case errors.Is(err, context.Canceled):
		return Canceled
	}
	return ""
}

// FromContext classifies why ctx stopped, "" while it is still live.
func FromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	return FromErr(ctx.Err())
}

// Stopped reports whether err is a cancellation or deadline (as opposed
// to nil or a genuine failure).
func Stopped(err error) bool { return FromErr(err) != "" }
