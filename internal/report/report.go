// Package report renders benchmark results as aligned text tables, CSV,
// Markdown tables and log-scale ASCII charts — the output layer of the
// sweep driver and of EXPERIMENTS.md.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: strings pass through,
// float64 renders with %.4g, ints with %d.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, FormatFloat(v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case int64:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// tableJSON is the wire form of a Table, used by the CLIs' -json output.
type tableJSON struct {
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON encodes the table as {"headers": [...], "rows": [[...]]}.
func (t *Table) MarshalJSON() ([]byte, error) {
	tj := tableJSON{Headers: t.headers, Rows: t.rows}
	if tj.Headers == nil {
		tj.Headers = []string{}
	}
	if tj.Rows == nil {
		tj.Rows = [][]string{}
	}
	return json.Marshal(tj)
}

// UnmarshalJSON decodes the MarshalJSON form.
func (t *Table) UnmarshalJSON(b []byte) error {
	var tj tableJSON
	if err := json.Unmarshal(b, &tj); err != nil {
		return err
	}
	t.headers, t.rows = tj.Headers, tj.Rows
	return nil
}

// FormatFloat renders a float compactly (%.4g with a fixed small form).
func FormatFloat(v float64) string {
	if v == 0 {
		return "0"
	}
	if math.Abs(v) >= 0.01 && math.Abs(v) < 1e6 {
		s := fmt.Sprintf("%.3f", v)
		s = strings.TrimRight(s, "0")
		s = strings.TrimRight(s, ".")
		return s
	}
	return fmt.Sprintf("%.3g", v)
}

func (t *Table) widths() []int {
	w := make([]int, len(t.headers))
	for i, h := range t.headers {
		w[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// WriteText renders the table with space-aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := t.widths()
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.headers)); err != nil {
		return err
	}
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the table as a GitHub-flavoured Markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.headers, " | ")); err != nil {
		return err
	}
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(rule, "|")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (simple quoting: cells containing
// commas or quotes are quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
		return err
	}
	if err := writeRow(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// Series is one named line of an xy chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart renders multiple series as an ASCII scatter/line plot, optionally
// with logarithmic axes — the Figure 1/2 reproduction format.
type Chart struct {
	Title         string
	XLabel        string
	YLabel        string
	LogX, LogY    bool
	Width, Height int
	series        []Series
}

// Add appends a series. X and Y must be equal length; extra points are
// truncated to the shorter.
func (c *Chart) Add(s Series) {
	n := len(s.X)
	if len(s.Y) < n {
		n = len(s.Y)
	}
	s.X, s.Y = s.X[:n], s.Y[:n]
	c.series = append(c.series, s)
}

var markers = []byte{'a', 's', 'c', 'g', 'x', 'o', '+', '*'}

// Write renders the chart.
func (c *Chart) Write(w io.Writer) error {
	width, height := c.Width, c.Height
	if width == 0 {
		width = 72
	}
	if height == 0 {
		height = 20
	}
	tx := func(v float64) float64 {
		if c.LogX {
			return math.Log10(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if c.LogY {
			return math.Log10(v)
		}
		return v
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range c.series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if (c.LogX && x <= 0) || (c.LogY && y <= 0) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, tx(x)), math.Max(maxX, tx(x))
			minY, maxY = math.Min(minY, ty(y)), math.Max(maxY, ty(y))
		}
	}
	if !any {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if (c.LogX && x <= 0) || (c.LogY && y <= 0) {
				continue
			}
			col := int((tx(x) - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((ty(y)-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = mark
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintln(w, c.Title); err != nil {
			return err
		}
	}
	topLabel := FormatFloat(untransform(maxY, c.LogY))
	botLabel := FormatFloat(untransform(minY, c.LogY))
	labelW := len(topLabel)
	if len(botLabel) > labelW {
		labelW = len(botLabel)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", labelW)
		switch i {
		case 0:
			label = pad(topLabel, labelW)
		case height - 1:
			label = pad(botLabel, labelW)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %s%s%s\n",
		strings.Repeat(" ", labelW),
		FormatFloat(untransform(minX, c.LogX)),
		strings.Repeat(" ", max(1, width-len(FormatFloat(untransform(minX, c.LogX)))-len(FormatFloat(untransform(maxX, c.LogX))))),
		FormatFloat(untransform(maxX, c.LogX))); err != nil {
		return err
	}
	// Legend.
	names := make([]string, 0, len(c.series))
	for si, s := range c.series {
		names = append(names, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "legend: %s", strings.Join(names, "  ")); err != nil {
		return err
	}
	if c.XLabel != "" || c.YLabel != "" {
		if _, err := fmt.Fprintf(w, "   [x: %s, y: %s]", c.XLabel, c.YLabel); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func untransform(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// HumanBytes renders a byte count the way the figures label sizes.
func HumanBytes(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// ParseBytes parses a human size like "4MB", "64K", "1GB" or a plain byte
// count. Units are binary (1K = 1024).
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "GB"):
		mult, t = 1<<30, strings.TrimSuffix(t, "GB")
	case strings.HasSuffix(t, "G"):
		mult, t = 1<<30, strings.TrimSuffix(t, "G")
	case strings.HasSuffix(t, "MB"):
		mult, t = 1<<20, strings.TrimSuffix(t, "MB")
	case strings.HasSuffix(t, "M"):
		mult, t = 1<<20, strings.TrimSuffix(t, "M")
	case strings.HasSuffix(t, "KB"):
		mult, t = 1<<10, strings.TrimSuffix(t, "KB")
	case strings.HasSuffix(t, "K"):
		mult, t = 1<<10, strings.TrimSuffix(t, "K")
	case strings.HasSuffix(t, "B"):
		t = strings.TrimSuffix(t, "B")
	}
	var n float64
	if _, err := fmt.Sscanf(t, "%g", &n); err != nil || n <= 0 {
		return 0, fmt.Errorf("report: cannot parse size %q", s)
	}
	v := int64(n * float64(mult))
	if v <= 0 {
		return 0, fmt.Errorf("report: size %q out of range", s)
	}
	return v, nil
}
