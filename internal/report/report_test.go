package report

import (
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := NewTable("target", "GB/s")
	tb.AddRow("aocl", "2.53")
	tb.AddRow("gpu", "203.9")
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "target") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule missing: %q", lines[1])
	}
	// Columns align: "aocl" padded to width of "target".
	if !strings.HasPrefix(lines[2], "aocl    ") {
		t.Errorf("alignment wrong: %q", lines[2])
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("x")
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x") {
		t.Error("row lost")
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("name", "f", "i")
	tb.AddRowf("x", 2.5, 42)
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"2.5", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		2.5:     "2.5",
		2.0:     "2",
		0.04:    "0.04",
		203.87:  "203.87",
		1e9:     "1e+09",
		0.00001: "1e-05",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("1", "2")
	var sb strings.Builder
	if err := tb.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "| a | b |") || !strings.Contains(out, "|---|---|") {
		t.Errorf("markdown malformed:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x,y", `q"u`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"x,y"`) {
		t.Errorf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"q""u"`) {
		t.Errorf("quote cell not escaped: %s", out)
	}
}

func TestChartBasics(t *testing.T) {
	c := Chart{Title: "test", LogX: true, LogY: true, Width: 40, Height: 10,
		XLabel: "size", YLabel: "GB/s"}
	c.Add(Series{Name: "gpu", X: []float64{1024, 4096, 16384}, Y: []float64{0.14, 0.95, 3.71}})
	c.Add(Series{Name: "cpu", X: []float64{1024, 4096, 16384}, Y: []float64{0.05, 0.19, 0.72}})
	var sb strings.Builder
	if err := c.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"test", "legend:", "a=gpu", "s=cpu", "[x: size, y: GB/s]"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Data markers must appear.
	if !strings.Contains(out, "a") || !strings.Contains(out, "s") {
		t.Error("markers missing")
	}
}

func TestChartEmpty(t *testing.T) {
	var c Chart
	var sb strings.Builder
	if err := c.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty chart must say so")
	}
}

func TestChartSkipsNonPositiveOnLogAxes(t *testing.T) {
	c := Chart{LogY: true}
	c.Add(Series{Name: "z", X: []float64{1, 2}, Y: []float64{0, 5}})
	var sb strings.Builder
	if err := c.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") || strings.Contains(sb.String(), "Inf") {
		t.Errorf("log chart leaked non-finite values:\n%s", sb.String())
	}
}

func TestChartTruncatesMismatchedSeries(t *testing.T) {
	var c Chart
	c.Add(Series{Name: "m", X: []float64{1, 2, 3}, Y: []float64{1, 2}})
	if len(c.series[0].X) != 2 {
		t.Error("series not truncated to shorter length")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		1024:    "1KB",
		4 << 20: "4MB",
		1 << 30: "1GB",
		1000:    "1000B",
		3 << 19: "1536KB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	good := map[string]int64{
		"4MB":   4 << 20,
		"64K":   64 << 10,
		"1GB":   1 << 30,
		"1024":  1024,
		"512B":  512,
		"0.5MB": 512 << 10,
		" 2kb ": 2048,
	}
	for in, want := range good {
		got, err := ParseBytes(in)
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseBytes(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "-4MB", "0"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) accepted", bad)
		}
	}
}
