package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestExperimentsPreCanceled: a canceled context returns a partial (or
// empty) experiment annotated with the canonical stop note — never an
// error — for every registered experiment.
func TestExperimentsPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, ent := range Registry() {
		e, err := ent.Run(ctx)
		if err != nil {
			t.Errorf("%s: canceled run errored: %v", ent.ID, err)
			continue
		}
		if ent.ID == "targets" {
			// The device table performs no simulation and completes even
			// under a canceled context.
			continue
		}
		noted := false
		for _, n := range e.Notes {
			if strings.Contains(n, "canceled") {
				noted = true
			}
		}
		if !noted {
			t.Errorf("%s: canceled run missing its stop note (notes: %v)", ent.ID, e.Notes)
		}
	}
}

// TestFig1aCancelMidRun: canceling after the first device keeps the
// collected series.
func TestFig1aCancelMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs one full fig1a device series")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// fig1b is the cheapest multi-device figure; cancel it immediately
	// after the first series by canceling from this goroutine once the
	// context has been consulted once is racy — instead pre-cancel and
	// verify the zero-series partial separately in
	// TestExperimentsPreCanceled. Here, run to completion and check no
	// stop note appears under a live context.
	e, err := Fig1b(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range e.Notes {
		if strings.Contains(n, "partial") {
			t.Errorf("live-context run carries stop note %q", n)
		}
	}
	if len(e.Series) != 4 {
		t.Errorf("fig1b measured %d series, want 4", len(e.Series))
	}
}
