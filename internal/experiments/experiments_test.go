package experiments

import (
	"context"
	"strings"
	"testing"

	"mpstream/internal/kernel"
	"mpstream/internal/paperdata"
	"mpstream/internal/stats"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"targets", "fig1a", "fig1b", "fig2", "fig3", "fig4a", "fig4b",
		"pcie", "resources", "unroll", "preshape", "dtype", "efficiency", "hmc", "stride"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, w := range want {
		if reg[i].ID != w {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, w)
		}
	}
	for _, w := range want {
		if _, err := ByID(w); err != nil {
			t.Errorf("ByID(%q): %v", w, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestWorstFactor(t *testing.T) {
	s := Series{GBps: []float64{2, 10}, Paper: []float64{1, 10}}
	if got := s.WorstFactor(); got != 2 {
		t.Errorf("WorstFactor = %v, want 2", got)
	}
	s = Series{GBps: []float64{0.5}, Paper: []float64{1}}
	if got := s.WorstFactor(); got != 2 {
		t.Errorf("inverse WorstFactor = %v, want 2", got)
	}
	if (Series{}).WorstFactor() != 1 {
		t.Error("no paper data must give 1")
	}
	// Zero points are skipped.
	s = Series{GBps: []float64{0, 1}, Paper: []float64{5, 1}}
	if got := s.WorstFactor(); got != 1 {
		t.Errorf("zero-skipping WorstFactor = %v", got)
	}
}

// Fig1b is the cheapest full-figure experiment: use it to check series
// structure, rendering and paper agreement end to end.
func TestFig1bEndToEnd(t *testing.T) {
	e, err := Fig1b(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Series) != 4 {
		t.Fatalf("got %d series", len(e.Series))
	}
	for _, s := range e.Series {
		if len(s.GBps) != 5 || len(s.Paper) != 5 {
			t.Errorf("%s: %d measured / %d paper points", s.Name, len(s.GBps), len(s.Paper))
		}
		if wf := s.WorstFactor(); wf > 1.35 {
			t.Errorf("%s deviates %.2fx from the paper (want <= 1.35x)", s.Name, wf)
		}
	}
	if dev := e.GeoMeanDeviation(); dev > 1.2 {
		t.Errorf("fig1b geomean deviation %.2fx, want <= 1.2x", dev)
	}

	var text strings.Builder
	if err := e.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig1b", "aocl", "gpu", "deviation", "legend"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text output missing %q", want)
		}
	}
	var md strings.Builder
	if err := e.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| vector width (words) |") &&
		!strings.Contains(md.String(), "###") {
		t.Errorf("markdown output malformed:\n%s", md.String())
	}
}

func TestFig3Orderings(t *testing.T) {
	e, err := Fig3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Series X axis is [ndrange flat nested]; check each target's ranking
	// matches paperdata.Fig3Order.
	idx := map[kernel.LoopMode]int{kernel.NDRange: 0, kernel.FlatLoop: 1, kernel.NestedLoop: 2}
	for _, s := range e.Series {
		order := paperdata.Fig3Order[s.Name]
		best := s.GBps[idx[order[0]]]
		mid := s.GBps[idx[order[1]]]
		worst := s.GBps[idx[order[2]]]
		if !(best >= mid && mid >= worst) {
			t.Errorf("%s: loop ordering %v broken: %v", s.Name, order, s.GBps)
		}
	}
}

func TestFig4aMemoryBound(t *testing.T) {
	e, err := Fig4a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range e.Series {
		if len(s.GBps) != 4 {
			t.Fatalf("%s: %d kernels", s.Name, len(s.GBps))
		}
		smry, _ := stats.Summarize(s.GBps)
		if smry.Max/smry.Min > 2.0 {
			t.Errorf("%s: kernels spread %0.2fx, want memory-bound (< 2x)", s.Name, smry.Max/smry.Min)
		}
	}
}

func TestFig4bShape(t *testing.T) {
	e, err := Fig4b(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for _, s := range e.Series {
		byName[s.Name] = s.GBps
	}
	vec, simd, cu := byName["vector"], byName["simd"], byName["cu"]
	if !(vec[4] > simd[4] && vec[4] > cu[4]) {
		t.Errorf("vectorization must win at N=16: vec=%v simd=%v cu=%v", vec[4], simd[4], cu[4])
	}
	if !(simd[4] < simd[stats.ArgMax(simd)] && cu[4] < cu[stats.ArgMax(cu)]) {
		t.Error("SIMD/CU must degrade past their interior peaks")
	}
}

func TestTargetsTable(t *testing.T) {
	e, err := Targets(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := e.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"aocl", "sdaccel", "cpu", "gpu", "Stratix", "Titan"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("targets table missing %q", want)
		}
	}
}

func TestPCIeBounded(t *testing.T) {
	e, err := PCIe(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range e.Series {
		last := s.GBps[len(s.GBps)-1]
		switch s.Name {
		case "gpu":
			if last > 11.5 {
				t.Errorf("gpu host-IO %.1f exceeds its PCIe link", last)
			}
		case "aocl":
			if last > 3.5 {
				t.Errorf("aocl host-IO %.1f exceeds its PCIe link", last)
			}
		}
	}
}

func TestResourcesTable(t *testing.T) {
	e, err := Resources(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := e.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"vector", "simd", "cu", "util %"} {
		if !strings.Contains(out, want) {
			t.Errorf("resources table missing %q", want)
		}
	}
}

func TestPreshapeCrossover(t *testing.T) {
	e, err := Preshape(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for _, s := range e.Series {
		byName[s.Name] = s.GBps
	}
	for _, id := range []string{"cpu", "gpu"} {
		always := byName[id+"-strided"]
		pre := byName[id+"-preshaped"]
		last := len(pre) - 1
		if !(pre[last] > always[last]) {
			t.Errorf("%s: pre-shaping must win at high reuse: %v vs %v", id, pre[last], always[last])
		}
		if pre[0] > always[0]*1.01 {
			t.Errorf("%s: pre-shaping cannot win at k=1 (gather costs a strided pass)", id)
		}
	}
}

func TestDtype(t *testing.T) {
	e, err := Dtype(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range e.Series {
		if len(s.GBps) != 2 {
			t.Fatalf("%s: %d points", s.Name, len(s.GBps))
		}
		if s.Name == "aocl" && s.GBps[1] <= s.GBps[0] {
			t.Error("aocl doubles must beat ints (wider coalesced access)")
		}
	}
}

func TestUnrollHelps(t *testing.T) {
	e, err := Unroll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range e.Series {
		if s.Name == "aocl" && !(s.GBps[3] > s.GBps[0]) {
			t.Errorf("aocl unroll must help: %v", s.GBps)
		}
	}
}

func TestEfficiency(t *testing.T) {
	e, err := Efficiency(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := e.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MB/J", "aocl", "gpu"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("efficiency table missing %q", want)
		}
	}
}

func TestHMCChangesThePicture(t *testing.T) {
	e, err := HMC(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for _, s := range e.Series {
		byName[s.Name] = s.GBps
	}
	ddr3 := byName["aocl-ddr3"]
	hmc := byName["aocl-hmc"]
	last := len(ddr3) - 1
	// The paper's closing remark: HMC changes the picture considerably —
	// the wide-vector ceiling must rise well past the DDR3 board's.
	if hmc[last] < 1.6*ddr3[last] {
		t.Errorf("HMC vec16 (%.1f) must clearly beat DDR3 vec16 (%.1f)", hmc[last], ddr3[last])
	}
	// Narrow pipelines are fmax-bound either way: roughly equal at vec1.
	if hmc[0] > 1.3*ddr3[0] || ddr3[0] > 1.3*hmc[0] {
		t.Errorf("vec1 should be fmax-bound on both: %.2f vs %.2f", hmc[0], ddr3[0])
	}
}

func TestStrideSweep(t *testing.T) {
	e, err := StrideSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range e.Series {
		// Stride 1 is contiguous: it must be the fastest point, and
		// throughput must fall towards a floor as the stride widens.
		if stats.ArgMax(s.GBps) != 0 {
			t.Errorf("%s: stride 1 must be fastest: %v", s.Name, s.GBps)
		}
		last := len(s.GBps) - 1
		if s.GBps[last] > 0.6*s.GBps[0] {
			t.Errorf("%s: wide strides must fall well below contiguous: %v", s.Name, s.GBps)
		}
	}
}
