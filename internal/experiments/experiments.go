// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each experiment
// returns its measured series alongside the digitized paper series so the
// sweep driver, the benchmark harness and EXPERIMENTS.md all draw from
// the same source.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"mpstream/internal/core"
	"mpstream/internal/device"
	"mpstream/internal/device/aocl"
	"mpstream/internal/device/targets"
	"mpstream/internal/dse"
	"mpstream/internal/fabric"
	"mpstream/internal/kernel"
	"mpstream/internal/paperdata"
	"mpstream/internal/report"
	"mpstream/internal/runstate"
	"mpstream/internal/sim/mem"
)

// Series is one measured line with its paper counterpart (Paper may be
// shorter than X or nil when the figure gives no numbers).
type Series struct {
	Name  string    `json:"name"`
	X     []float64 `json:"x"`
	GBps  []float64 `json:"gbps"`
	Paper []float64 `json:"paper,omitempty"`
}

// WorstFactor returns the largest multiplicative deviation from the paper
// over the aligned points, and 1 when no paper data exists.
func (s Series) WorstFactor() float64 {
	worst := 1.0
	n := len(s.Paper)
	if len(s.GBps) < n {
		n = len(s.GBps)
	}
	for i := 0; i < n; i++ {
		got, want := s.GBps[i], s.Paper[i]
		if got <= 0 || want <= 0 {
			continue
		}
		f := got / want
		if f < 1 {
			f = 1 / f
		}
		if f > worst {
			worst = f
		}
	}
	return worst
}

// Experiment is one reproduced figure or table.
type Experiment struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	XLabel string   `json:"x_label,omitempty"`
	Series []Series `json:"series,omitempty"`
	// Extra holds a pre-built table for experiments that are tables
	// rather than series (resources, target info).
	Extra *report.Table `json:"extra,omitempty"`
	Notes []string      `json:"notes,omitempty"`
}

// verifyLimit is the largest array materialized functionally; larger
// sweeps run timing-only (results up to this size are verified).
const verifyLimit = 64 << 20

// stopNote is the annotation a partially collected experiment carries
// when its context ended mid-run.
func stopNote(ctx context.Context) string {
	return runstate.FromContext(ctx) + " — partial results"
}

// stopped reports whether ctx ended the experiment early, annotating e
// with the canonical stop note when it did. Every experiment checks it
// between measurement units (devices, sizes, routes) and returns the
// partial experiment — not an error — so a Ctrl-C'd mpsweep still
// renders what was collected.
func stopped(ctx context.Context, e *Experiment) bool {
	if runstate.FromContext(ctx) == "" {
		return false
	}
	annotate(ctx, e)
	return true
}

// annotate appends the canonical stop note exactly once.
func annotate(ctx context.Context, e *Experiment) {
	note := stopNote(ctx)
	for _, n := range e.Notes {
		if n == note {
			return
		}
	}
	e.Notes = append(e.Notes, note)
}

// annotated wraps a runner so a stop that lands during an experiment's
// final measurement unit — after the last per-unit stopped() check —
// still tags the returned experiment. Without this, a truncated last
// series would be indistinguishable from a complete run in JSON output.
func annotated(r Runner) Runner {
	return func(ctx context.Context) (*Experiment, error) {
		e, err := r(ctx)
		if err != nil || e == nil || runstate.FromContext(ctx) == "" {
			return e, err
		}
		annotate(ctx, e)
		return e, nil
	}
}

func baseConfig(arrayBytes int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Ops = []kernel.Op{kernel.Copy}
	cfg.ArrayBytes = arrayBytes
	cfg.NTimes = 2
	cfg.Verify = arrayBytes <= verifyLimit
	return cfg
}

func sizesToMB(sizes []int64) []float64 {
	x := make([]float64, len(sizes))
	for i, s := range sizes {
		x[i] = float64(s) / (1 << 20)
	}
	return x
}

func pointsToGBps(pts []dse.Point, op kernel.Op) ([]float64, error) {
	out := make([]float64, len(pts))
	for i, p := range pts {
		if p.Err != nil {
			return nil, fmt.Errorf("%s: %w", p.Label, p.Err)
		}
		out[i] = p.GBps(op)
	}
	return out, nil
}

// sweepSizesSeries measures one target's copy bandwidth across sizes,
// returning the prefix collected so far when ctx ends mid-sweep.
func sweepSizesSeries(ctx context.Context, dev device.Device, sizes []int64, pattern mem.Pattern) ([]float64, error) {
	var out []float64
	for _, s := range sizes {
		if ctx.Err() != nil {
			return out, nil
		}
		cfg := baseConfig(s)
		cfg.Pattern = pattern
		pts := dse.SweepSizes(dev, cfg, []int64{s})
		g, err := pointsToGBps(pts, kernel.Copy)
		if err != nil {
			return nil, err
		}
		out = append(out, g[0])
	}
	return out, nil
}

// Fig1a reproduces Figure 1(a): copy bandwidth vs array size on all four
// targets (contiguous, vec 1, optimal loop management).
func Fig1a(ctx context.Context) (*Experiment, error) {
	sizes := paperdata.Fig1Sizes()
	e := &Experiment{
		ID:     "fig1a",
		Title:  "Figure 1(a): copy bandwidth vs array size (GB/s)",
		XLabel: "array size (MB)",
	}
	for _, dev := range targets.All() {
		if stopped(ctx, e) {
			return e, nil
		}
		id := dev.Info().ID
		g, err := sweepSizesSeries(ctx, dev, sizes, mem.ContiguousPattern())
		if err != nil {
			return nil, fmt.Errorf("fig1a %s: %w", id, err)
		}
		e.Series = append(e.Series, Series{Name: id, X: sizesToMB(sizes), GBps: g, Paper: paperdata.Fig1a[id]})
	}
	return e, nil
}

// Fig1b reproduces Figure 1(b): copy bandwidth vs vector width at 4 MB.
func Fig1b(ctx context.Context) (*Experiment, error) {
	widths := paperdata.VecWidths()
	x := make([]float64, len(widths))
	for i, w := range widths {
		x[i] = float64(w)
	}
	e := &Experiment{
		ID:     "fig1b",
		Title:  "Figure 1(b): copy bandwidth vs vector width at 4 MB (GB/s)",
		XLabel: "vector width (words)",
	}
	for _, dev := range targets.All() {
		if stopped(ctx, e) {
			return e, nil
		}
		id := dev.Info().ID
		pts := dse.SweepVecWidths(dev, baseConfig(4<<20), widths)
		g, err := pointsToGBps(pts, kernel.Copy)
		if err != nil {
			return nil, fmt.Errorf("fig1b %s: %w", id, err)
		}
		e.Series = append(e.Series, Series{Name: id, X: x, GBps: g, Paper: paperdata.Fig1b[id]})
	}
	return e, nil
}

// Fig2 reproduces Figure 2: contiguous vs column-major strided copy over
// sizes up to 1 GB (64 MB for the FPGA targets, as in the figure).
func Fig2(ctx context.Context) (*Experiment, error) {
	all := paperdata.Fig2Sizes()
	e := &Experiment{
		ID:     "fig2",
		Title:  "Figure 2: copy bandwidth, contiguous vs strided (GB/s)",
		XLabel: "array size (MB)",
		Notes: []string{
			"strided = row-major 2D array walked column-major; the stride grows with the array",
		},
	}
	for _, dev := range targets.All() {
		if stopped(ctx, e) {
			return e, nil
		}
		id := dev.Info().ID
		sizes := all
		if dev.Info().Kind == device.FPGA {
			sizes = all[:9] // the figure's FPGA series stop at 64 MB
		}
		for _, pat := range []struct {
			suffix  string
			pattern mem.Pattern
			paper   []float64
		}{
			{"contig", mem.ContiguousPattern(), paperdata.Fig2Contig[id]},
			{"strided", mem.ColMajorPattern(), paperdata.Fig2Strided[id]},
		} {
			g, err := sweepSizesSeries(ctx, dev, sizes, pat.pattern)
			if err != nil {
				return nil, fmt.Errorf("fig2 %s-%s: %w", id, pat.suffix, err)
			}
			e.Series = append(e.Series, Series{
				Name: id + "-" + pat.suffix, X: sizesToMB(sizes), GBps: g, Paper: pat.paper,
			})
		}
	}
	return e, nil
}

// Fig3 reproduces Figure 3: loop management on all targets at 4 MB. The
// paper's bars are unlabeled; Paper data is nil and the orderings are
// recorded in paperdata.Fig3Order.
func Fig3(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:     "fig3",
		Title:  "Figure 3: loop management, 4 MB copy (GB/s; paper reports KB/s bars)",
		XLabel: "loop mode (1=ndrange 2=flat 3=nested)",
	}
	for _, dev := range targets.All() {
		if stopped(ctx, e) {
			return e, nil
		}
		id := dev.Info().ID
		pts := dse.SweepLoopModes(dev, baseConfig(4<<20))
		g, err := pointsToGBps(pts, kernel.Copy)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s: %w", id, err)
		}
		e.Series = append(e.Series, Series{Name: id, X: []float64{1, 2, 3}, GBps: g})
	}
	return e, nil
}

// Fig4a reproduces Figure 4(a): all four STREAM kernels on all targets at
// 4 MB.
func Fig4a(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:     "fig4a",
		Title:  "Figure 4(a): all four kernels, 4 MB (GB/s; paper reports KB/s bars)",
		XLabel: "kernel (1=copy 2=scale 3=add 4=triad)",
	}
	for _, dev := range targets.All() {
		if stopped(ctx, e) {
			return e, nil
		}
		id := dev.Info().ID
		cfg := baseConfig(4 << 20)
		cfg.Ops = kernel.Ops()
		res, err := core.Run(dev, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig4a %s: %w", id, err)
		}
		var g []float64
		for _, kr := range res.Kernels {
			g = append(g, kr.GBps)
		}
		e.Series = append(e.Series, Series{Name: id, X: []float64{1, 2, 3, 4}, GBps: g})
	}
	return e, nil
}

// Fig4b reproduces Figure 4(b): the three AOCL optimization routes.
func Fig4b(ctx context.Context) (*Experiment, error) {
	dev, err := targets.ByID("aocl")
	if err != nil {
		return nil, err
	}
	ns := paperdata.Fig4bN()
	x := make([]float64, len(ns))
	for i, n := range ns {
		x[i] = float64(n)
	}
	base := baseConfig(4 << 20)
	e := &Experiment{
		ID:     "fig4b",
		Title:  "Figure 4(b): AOCL optimization routes at 4 MB (GB/s)",
		XLabel: "N (vector width / SIMD work-items / compute units)",
		Notes:  []string{"paper's SIMD/CU values are read off the log-scale plot (approximate)"},
	}

	vecCfg := base
	vecCfg.OptimalLoop = false
	vecCfg.Loop = kernel.FlatLoop
	for _, route := range []struct {
		name  string
		sweep func() []dse.Point
	}{
		{"vector", func() []dse.Point { return dse.SweepVecWidths(dev, vecCfg, ns) }},
		{"simd", func() []dse.Point { return dse.SweepSIMD(dev, base, ns) }},
		{"cu", func() []dse.Point { return dse.SweepCU(dev, base, ns) }},
	} {
		if stopped(ctx, e) {
			return e, nil
		}
		g, err := pointsToGBps(route.sweep(), kernel.Copy)
		if err != nil {
			return nil, fmt.Errorf("fig4b %s: %w", route.name, err)
		}
		e.Series = append(e.Series, Series{Name: route.name, X: x, GBps: g, Paper: paperdata.Fig4b[route.name]})
	}
	return e, nil
}

// Targets reproduces the Section IV device table. It performs no
// simulation, so the context is not consulted.
func Targets(_ context.Context) (*Experiment, error) {
	tb := report.NewTable("target", "description", "kind", "peak GB/s (paper)", "memory", "optimal loop")
	for _, dev := range targets.All() {
		info := dev.Info()
		tb.AddRowf(info.ID, info.Description, info.Kind.String(),
			fmt.Sprintf("%.1f (%.0f)", info.PeakMemGBps, paperdata.PeakGBps[info.ID]),
			report.HumanBytes(info.MemBytes), info.OptimalLoop.String())
	}
	return &Experiment{
		ID:    "targets",
		Title: "Section IV: experimental targets",
		Extra: tb,
	}, nil
}

// PCIe measures the host<->device stream mode (EXP-X1): effective copy
// bandwidth when sources and destination live on the host.
func PCIe(ctx context.Context) (*Experiment, error) {
	sizes := []int64{64 << 10, 1 << 20, 16 << 20, 64 << 20}
	e := &Experiment{
		ID:     "pcie",
		Title:  "EXP-X1: host<->device streams (copy, GB/s, transfers included)",
		XLabel: "array size (MB)",
	}
	for _, dev := range targets.All() {
		if stopped(ctx, e) {
			return e, nil
		}
		id := dev.Info().ID
		var g []float64
		for _, s := range sizes {
			if ctx.Err() != nil {
				break
			}
			cfg := baseConfig(s)
			cfg.HostIO = true
			res, err := core.Run(dev, cfg)
			if err != nil {
				return nil, fmt.Errorf("pcie %s: %w", id, err)
			}
			g = append(g, res.Kernel(kernel.Copy).GBps)
		}
		e.Series = append(e.Series, Series{Name: id, X: sizesToMB(sizes), GBps: g})
	}
	e.Notes = append(e.Notes,
		"cpu is loopback (host==device); others are bounded by their PCIe link")
	return e, nil
}

// Resources reproduces the Section IV resource observation (EXP-X2): the
// FPGA footprint of vectorization vs num_simd_work_items vs
// num_compute_units at equal nominal parallelism.
func Resources(ctx context.Context) (*Experiment, error) {
	dev, err := targets.ByID("aocl")
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("route", "N", "logic (ALM)", "registers", "BRAM", "DSP", "fmax MHz", "util %")
	part := fabric.StratixVD5
	var notes []string
	for _, n := range paperdata.Fig4bN() {
		if runstate.FromContext(ctx) != "" {
			notes = append(notes, stopNote(ctx))
			break
		}
		for _, route := range []string{"vector", "simd", "cu"} {
			k := kernel.Kernel{Op: kernel.Copy, Type: kernel.Int32, VecWidth: 1, Loop: kernel.NDRange}
			switch route {
			case "vector":
				k.Loop = kernel.FlatLoop
				k.VecWidth = n
			case "simd":
				k.Attrs.NumSIMDWorkItems = n
				k.Attrs.ReqdWorkGroupSize = 256
			case "cu":
				k.Attrs.NumComputeUnits = n
			}
			c, err := dev.Compile(k)
			if err != nil {
				tb.AddRowf(route, n, "-", "-", "-", "-", "-", "does not fit")
				continue
			}
			res, _ := c.Resources()
			mhz, _ := c.FmaxMHz()
			util := part.Utilization(res).Max() * 100
			tb.AddRowf(route, n, res.Logic, res.Registers, res.BRAM, res.DSP, mhz, util)
		}
	}
	return &Experiment{
		ID:    "resources",
		Title: "EXP-X2: AOCL resource usage by optimization route",
		Extra: tb,
		Notes: append([]string{
			"the paper: AOCL-specific optimizations take up more FPGA resources than native vectorization",
		}, notes...),
	}, nil
}

// Unroll sweeps the loop unroll factor on the FPGA targets (EXP-X3).
func Unroll(ctx context.Context) (*Experiment, error) {
	factors := []int{1, 2, 4, 8, 16}
	x := make([]float64, len(factors))
	for i, u := range factors {
		x[i] = float64(u)
	}
	e := &Experiment{
		ID:     "unroll",
		Title:  "EXP-X3: loop unroll factor, 4 MB copy (GB/s)",
		XLabel: "unroll factor",
	}
	for _, id := range []string{"aocl", "sdaccel"} {
		if stopped(ctx, e) {
			return e, nil
		}
		dev, err := targets.ByID(id)
		if err != nil {
			return nil, err
		}
		cfg := baseConfig(4 << 20)
		cfg.OptimalLoop = false
		cfg.Loop = dev.Info().OptimalLoop
		g, err := pointsToGBps(dse.SweepUnroll(dev, cfg, factors), kernel.Copy)
		if err != nil {
			return nil, fmt.Errorf("unroll %s: %w", id, err)
		}
		e.Series = append(e.Series, Series{Name: id, X: x, GBps: g})
	}
	return e, nil
}

// Preshape quantifies the paper's pre-shaping observation (EXP-X4): when
// data is re-read k times, re-arranging it once on the host so accesses
// become contiguous beats repeating strided accesses.
func Preshape(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:     "preshape",
		Title:  "EXP-X4: strided vs pre-shaped access, 16 MB copy, k reuses (effective GB/s)",
		XLabel: "k (number of passes over the data)",
	}
	ks := []float64{1, 2, 4, 8, 16}
	for _, id := range []string{"cpu", "gpu"} {
		if stopped(ctx, e) {
			return e, nil
		}
		dev, err := targets.ByID(id)
		if err != nil {
			return nil, err
		}
		cfg := baseConfig(16 << 20)
		cfg.Pattern = mem.ColMajorPattern()
		strided, err := core.Run(dev, cfg)
		if err != nil {
			return nil, err
		}
		cfg.Pattern = mem.ContiguousPattern()
		contig, err := core.Run(dev, cfg)
		if err != nil {
			return nil, err
		}
		tStr := strided.Kernel(kernel.Copy).BestSeconds
		tCon := contig.Kernel(kernel.Copy).BestSeconds
		// Pre-shaping costs one strided pass (gather), then every reuse
		// runs contiguous.
		bytes := float64(kernel.Copy.BytesMoved(cfg.ArrayBytes))
		var always, preshaped []float64
		for _, k := range ks {
			always = append(always, k*bytes/(k*tStr)/1e9)
			preshaped = append(preshaped, k*bytes/(tStr+k*tCon)/1e9)
		}
		e.Series = append(e.Series,
			Series{Name: id + "-strided", X: ks, GBps: always},
			Series{Name: id + "-preshaped", X: ks, GBps: preshaped},
		)
	}
	e.Notes = append(e.Notes,
		"pre-shaping pays once its one-off gather is amortized — the paper's host re-arrangement insight")
	return e, nil
}

// Dtype compares int and double elements across targets (EXP-X5).
func Dtype(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:     "dtype",
		Title:  "EXP-X5: data type, 4 MB copy (GB/s)",
		XLabel: "type (1=int 2=double)",
	}
	for _, dev := range targets.All() {
		if stopped(ctx, e) {
			return e, nil
		}
		id := dev.Info().ID
		g, err := pointsToGBps(dse.SweepTypes(dev, baseConfig(4<<20)), kernel.Copy)
		if err != nil {
			return nil, fmt.Errorf("dtype %s: %w", id, err)
		}
		e.Series = append(e.Series, Series{Name: id, X: []float64{1, 2}, GBps: g})
	}
	return e, nil
}

// Efficiency is EXP-X7, the paper's future-work item: energy efficiency
// of the four targets at their tuned copy configurations.
func Efficiency(ctx context.Context) (*Experiment, error) {
	tb := report.NewTable("target", "config", "copy GB/s", "watts", "MB/J")
	var notes []string
	for _, dev := range targets.All() {
		if runstate.FromContext(ctx) != "" {
			notes = append(notes, stopNote(ctx))
			break
		}
		info := dev.Info()
		cfg := baseConfig(16 << 20)
		label := "vec1"
		if info.Kind == device.FPGA {
			cfg.VecWidth = 16 // the tuned FPGA configuration
			label = "vec16"
		}
		res, err := core.Run(dev, cfg)
		if err != nil {
			return nil, fmt.Errorf("efficiency %s: %w", info.ID, err)
		}
		bw := res.Kernel(kernel.Copy).GBps
		tb.AddRowf(info.ID, label, bw, info.WattsAt(bw), info.MBPerJoule(bw))
	}
	return &Experiment{
		ID:    "efficiency",
		Title: "EXP-X7: energy efficiency at tuned copy configurations",
		Extra: tb,
		Notes: append([]string{
			"the paper's future-work conjecture: tuned FPGAs beat the CPU on MB/J;",
			"the GDDR5 GPU still leads on pure bandwidth-per-watt for streaming",
		}, notes...),
	}, nil
}

// HMC is EXP-X8, the paper's closing remark: a Hybrid Memory Cube board
// "can change the picture considerably". It sweeps vector width on the
// DDR3 board and on an HMC variant of the same fabric.
func HMC(ctx context.Context) (*Experiment, error) {
	ns := paperdata.VecWidths()
	x := make([]float64, len(ns))
	for i, n := range ns {
		x[i] = float64(n)
	}
	e := &Experiment{
		ID:     "hmc",
		Title:  "EXP-X8: DDR3 board vs Hybrid Memory Cube variant, 4 MB copy (GB/s)",
		XLabel: "vector width (words)",
	}
	cfg := baseConfig(4 << 20)
	cfg.OptimalLoop = false
	cfg.Loop = kernel.FlatLoop

	for _, variant := range []struct {
		name string
		dev  device.Device
	}{
		{"aocl-ddr3", aocl.New()},
		{"aocl-hmc", aocl.NewWithConfig(aocl.HMCConfig())},
	} {
		if stopped(ctx, e) {
			return e, nil
		}
		g, err := pointsToGBps(dse.SweepVecWidths(variant.dev, cfg, ns), kernel.Copy)
		if err != nil {
			return nil, fmt.Errorf("hmc %s: %w", variant.name, err)
		}
		e.Series = append(e.Series, Series{Name: variant.name, X: x, GBps: g})
	}
	e.Notes = append(e.Notes,
		"HMC removes the DRAM wall; the kernel-clock interconnect becomes the new ceiling")
	return e, nil
}

// StrideSweep is EXP-X9: the benchmark's second access-pattern family,
// a fixed element stride. The paper's Figure 2 axis is annotated
// "[Stride2]"; this sweep makes the fixed-stride interpretation runnable
// alongside the column-major one and shows the cache-line/burst
// granularity staircase.
func StrideSweep(ctx context.Context) (*Experiment, error) {
	strides := []int{1, 2, 4, 8, 16, 32}
	x := make([]float64, len(strides))
	for i, s := range strides {
		x[i] = float64(s)
	}
	e := &Experiment{
		ID:     "stride",
		Title:  "EXP-X9: fixed-stride access, 4 MB copy (GB/s)",
		XLabel: "element stride (words)",
	}
	for _, dev := range targets.All() {
		if stopped(ctx, e) {
			return e, nil
		}
		id := dev.Info().ID
		var g []float64
		for _, s := range strides {
			if ctx.Err() != nil {
				break
			}
			cfg := baseConfig(4 << 20)
			cfg.Pattern = mem.StridedPattern(s)
			res, err := core.Run(dev, cfg)
			if err != nil {
				return nil, fmt.Errorf("stride %s/%d: %w", id, s, err)
			}
			g = append(g, res.Kernel(kernel.Copy).GBps)
		}
		e.Series = append(e.Series, Series{Name: id, X: x, GBps: g})
	}
	e.Notes = append(e.Notes,
		"stride 1 equals contiguous; throughput falls towards the line/burst-granularity floor as the stride widens")
	return e, nil
}

// Runner regenerates one experiment under a context: a canceled or
// deadline-expired context returns the partially collected experiment
// (annotated with a canonical stop note), not an error.
type Runner func(context.Context) (*Experiment, error)

// Registry maps experiment ids to their runners, in presentation order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		// targets is not wrapped: it performs no simulation and completes
		// whole even under a canceled context, so a stop note would lie.
		{"targets", Targets},
		{"fig1a", annotated(Fig1a)},
		{"fig1b", annotated(Fig1b)},
		{"fig2", annotated(Fig2)},
		{"fig3", annotated(Fig3)},
		{"fig4a", annotated(Fig4a)},
		{"fig4b", annotated(Fig4b)},
		{"pcie", annotated(PCIe)},
		{"resources", annotated(Resources)},
		{"unroll", annotated(Unroll)},
		{"preshape", annotated(Preshape)},
		{"dtype", annotated(Dtype)},
		{"efficiency", annotated(Efficiency)},
		{"hmc", annotated(HMC)},
		{"stride", annotated(StrideSweep)},
	}
}

// ByID returns the runner for one experiment id.
func ByID(id string) (Runner, error) {
	for _, ent := range Registry() {
		if ent.ID == id {
			return ent.Run, nil
		}
	}
	var ids []string
	for _, ent := range Registry() {
		ids = append(ids, ent.ID)
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, ids)
}

// Table renders an experiment's series as a table: one row per x value,
// measured and paper columns per series.
func (e *Experiment) Table() *report.Table {
	if e.Extra != nil {
		return e.Extra
	}
	headers := []string{e.XLabel}
	for _, s := range e.Series {
		headers = append(headers, s.Name)
		if s.Paper != nil {
			headers = append(headers, s.Name+" (paper)")
		}
	}
	tb := report.NewTable(headers...)
	rows := 0
	var xAxis []float64
	for _, s := range e.Series {
		if len(s.X) > rows {
			rows = len(s.X)
			xAxis = s.X
		}
	}
	for i := 0; i < rows; i++ {
		var cells []string
		if i < len(xAxis) {
			cells = append(cells, report.FormatFloat(xAxis[i]))
		} else {
			cells = append(cells, "")
		}
		for _, s := range e.Series {
			if i < len(s.GBps) {
				cells = append(cells, report.FormatFloat(s.GBps[i]))
			} else {
				cells = append(cells, "")
			}
			if s.Paper != nil {
				if i < len(s.Paper) {
					cells = append(cells, report.FormatFloat(s.Paper[i]))
				} else {
					cells = append(cells, "")
				}
			}
		}
		tb.AddRow(cells...)
	}
	return tb
}

// WriteText renders the experiment as a table plus (for size sweeps) a
// log-log chart, and the paper-deviation summary.
func (e *Experiment) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s [%s]\n", e.Title, e.ID); err != nil {
		return err
	}
	if err := e.Table().WriteText(w); err != nil {
		return err
	}
	if e.Extra == nil && len(e.Series) > 0 && len(e.Series[0].X) >= 5 {
		ch := report.Chart{LogX: true, LogY: true, XLabel: e.XLabel, YLabel: "GB/s"}
		for _, s := range e.Series {
			ch.Add(report.Series{Name: s.Name, X: s.X, Y: s.GBps})
		}
		if err := ch.Write(w); err != nil {
			return err
		}
	}
	for _, s := range e.Series {
		if s.Paper != nil {
			fmt.Fprintf(w, "deviation %-16s worst factor %.2fx\n", s.Name, s.WorstFactor())
		}
	}
	for _, n := range e.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteMarkdown renders the experiment for EXPERIMENTS.md.
func (e *Experiment) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s (`%s`)\n\n", e.Title, e.ID); err != nil {
		return err
	}
	if err := e.Table().WriteMarkdown(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, s := range e.Series {
		if s.Paper != nil {
			fmt.Fprintf(w, "- `%s`: worst deviation %.2fx from the paper series\n", s.Name, s.WorstFactor())
		}
	}
	for _, n := range e.Notes {
		fmt.Fprintf(w, "- note: %s\n", n)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the experiment's table as CSV, preceded by no
// decoration at all: the output of `mpsweep -csv` is meant for
// spreadsheets and plotting scripts, one table per experiment.
func (e *Experiment) WriteCSV(w io.Writer) error {
	return e.Table().WriteCSV(w)
}

// GeoMeanDeviation summarizes all paper-comparable series of an
// experiment as the geometric mean of per-point factors; 1.0 is perfect.
func (e *Experiment) GeoMeanDeviation() float64 {
	var logs []float64
	for _, s := range e.Series {
		n := len(s.Paper)
		if len(s.GBps) < n {
			n = len(s.GBps)
		}
		for i := 0; i < n; i++ {
			got, want := s.GBps[i], s.Paper[i]
			if got <= 0 || want <= 0 {
				continue
			}
			f := got / want
			if f < 1 {
				f = 1 / f
			}
			logs = append(logs, math.Log(f))
		}
	}
	if len(logs) == 0 {
		return 1
	}
	var sum float64
	for _, l := range logs {
		sum += l
	}
	return math.Exp(sum / float64(len(logs)))
}
