package surface

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mpstream/internal/device"
	"mpstream/internal/device/targets"
	"mpstream/internal/sim/mem"
)

// smallConfig keeps unit-test surfaces fast.
func smallConfig() Config {
	return Config{
		Patterns:   []mem.Pattern{mem.ContiguousPattern()},
		RWRatios:   []float64{1, 0.5},
		Rates:      []float64{0.1, 0.5, 0.9, 1.2},
		ArrayBytes: 4 << 20,
		WindowTxns: 8192,
		ProbeHops:  128,
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config must validate via defaults: %v", err)
	}
	bad := []Config{
		{ArrayBytes: 16},
		{RWRatios: []float64{1.5}},
		{RWRatios: []float64{-0.1}},
		{Rates: []float64{0}},
		{Rates: []float64{-1}},
		{WindowTxns: 8},
		{ProbeHops: 2},
		{KneeFactor: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, c)
		}
	}
}

func TestPoints(t *testing.T) {
	if got := smallConfig().Points(); got != 8 {
		t.Errorf("Points = %d, want 8", got)
	}
	def := Config{}.Points()
	if def != len(DefaultPatterns())*len(DefaultRWRatios())*len(DefaultRates()) {
		t.Errorf("default Points = %d", def)
	}
}

func TestGenerateShapeAndMechanism(t *testing.T) {
	dev, err := targets.ByID("gpu")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	s, err := Generate(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Device.ID != "gpu" {
		t.Errorf("device id %q", s.Device.ID)
	}
	if len(s.Curves) != 2 {
		t.Fatalf("curves = %d, want 2", len(s.Curves))
	}
	for _, c := range s.Curves {
		if len(c.Points) != len(cfg.Rates) {
			t.Fatalf("curve has %d points, want %d", len(c.Points), len(cfg.Rates))
		}
		if c.IdleLatencyNs <= 0 {
			t.Errorf("idle latency %.1f must be positive", c.IdleLatencyNs)
		}
		for i, p := range c.Points {
			if p.LatencyNs < c.IdleLatencyNs*0.9 {
				t.Errorf("loaded latency %.1f below idle %.1f", p.LatencyNs, c.IdleLatencyNs)
			}
			if p.AchievedGBps <= 0 || p.OfferedGBps <= 0 {
				t.Errorf("point %d has no bandwidth: %+v", i, p)
			}
			if p.AchievedGBps > s.Device.PeakMemGBps*1.01 {
				t.Errorf("achieved %.1f exceeds peak %.1f", p.AchievedGBps, s.Device.PeakMemGBps)
			}
			// Monotone up to measurement noise — except once both points
			// are deep past saturation (a chase completes very few hops
			// there, so the handful of huge samples jitter).
			deep := 5 * c.IdleLatencyNs
			if i > 0 && p.LatencyNs < 0.9*c.Points[i-1].LatencyNs &&
				!(p.LatencyNs > deep && c.Points[i-1].LatencyNs > deep) {
				t.Errorf("latency not monotone with rate: %.1f after %.1f",
					p.LatencyNs, c.Points[i-1].LatencyNs)
			}
		}
		// The ladder crosses saturation, so the last rung must be visibly
		// congested relative to the first.
		first, last := c.Points[0], c.Points[len(c.Points)-1]
		if last.LatencyNs < 2*first.LatencyNs {
			t.Errorf("saturated rung %.1f ns not clearly above idle rung %.1f ns",
				last.LatencyNs, first.LatencyNs)
		}
		// Knee sits on the curve, within the latency budget.
		if c.Knee.GBps <= 0 {
			t.Errorf("knee bandwidth missing: %+v", c.Knee)
		}
		if !c.Knee.Saturated && c.Knee.LatencyNs > DefaultKneeFactor*c.IdleLatencyNs {
			t.Errorf("knee latency %.1f beyond budget", c.Knee.LatencyNs)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	run := func() *Surface {
		dev, err := targets.ByID("cpu")
		if err != nil {
			t.Fatal(err)
		}
		s, err := Generate(dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("identical configurations produced different surfaces")
	}
}

func TestGenerateAllTargets(t *testing.T) {
	cfg := smallConfig()
	cfg.RWRatios = []float64{2.0 / 3}
	cfg.Rates = []float64{0.25, 1.0}
	for _, dev := range targets.All() {
		s, err := Generate(dev, cfg)
		if err != nil {
			t.Errorf("%s: %v", dev.Info().ID, err)
			continue
		}
		if len(s.Curves) != 1 || len(s.Curves[0].Points) != 2 {
			t.Errorf("%s: unexpected shape", dev.Info().ID)
		}
	}
}

// fakeDevice implements device.Device without a memory system.
type fakeDevice struct{ device.Device }

func (fakeDevice) Info() device.Info { return device.Info{ID: "fake"} }

func TestGenerateNeedsMemorySystem(t *testing.T) {
	_, err := Generate(fakeDevice{}, smallConfig())
	if err == nil || !strings.Contains(err.Error(), "memory system") {
		t.Errorf("expected a memory-system error, got %v", err)
	}
}

func TestStridedKneeBelowContiguous(t *testing.T) {
	cfg := smallConfig()
	// Stride of 128 bursts = one full 8 KB row per hop on the CPU's
	// DDR3: every access activates a fresh row, so the tFAW activation
	// window caps the bandwidth well below the streaming capacity.
	cfg.Patterns = []mem.Pattern{mem.ContiguousPattern(), mem.StridedPattern(128)}
	cfg.RWRatios = []float64{1}
	dev, err := targets.ByID("cpu")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Generate(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	contig, strided := s.Curves[0], s.Curves[1]
	// The row-per-hop stride thrashes rows and trips the activation-rate
	// limit: past saturation it cannot deliver what streaming does.
	last := len(contig.Points) - 1
	if strided.Points[last].AchievedGBps >= contig.Points[last].AchievedGBps {
		t.Errorf("saturated strided bandwidth %.2f not below contiguous %.2f",
			strided.Points[last].AchievedGBps, contig.Points[last].AchievedGBps)
	}
	// The probe chase is background-independent: all curves of one
	// surface share the single idle measurement.
	if strided.IdleLatencyNs != contig.IdleLatencyNs {
		t.Errorf("idle latency differs between curves: %.1f vs %.1f",
			strided.IdleLatencyNs, contig.IdleLatencyNs)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dev, err := targets.ByID("aocl")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Generate(dev, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Surface
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*s, back) {
		t.Error("surface does not survive a JSON round trip")
	}
}

func TestTables(t *testing.T) {
	dev, err := targets.ByID("gpu")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Generate(dev, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := s.Table().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"pattern", "achieved GB/s", "contiguous", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := s.KneeTable().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "knee GB/s") {
		t.Errorf("knee CSV missing header:\n%s", sb.String())
	}
	sb.Reset()
	if err := s.Curves[0].Chart().Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "loaded latency") {
		t.Errorf("chart missing title:\n%s", sb.String())
	}
}

func TestMinKneeGBps(t *testing.T) {
	s := &Surface{Curves: []Curve{
		{Knee: Knee{GBps: 12}},
		{Knee: Knee{GBps: 7}},
		{Knee: Knee{GBps: 9}},
	}}
	if got := s.MinKneeGBps(); got != 7 {
		t.Errorf("MinKneeGBps = %g, want 7", got)
	}
	if got := (&Surface{}).MinKneeGBps(); got != 0 {
		t.Errorf("empty surface MinKneeGBps = %g", got)
	}
	if got := s.KneeGBps(1); got != 7 {
		t.Errorf("KneeGBps(1) = %g", got)
	}
	if got := s.KneeGBps(99); got != 0 {
		t.Errorf("KneeGBps(99) = %g", got)
	}
}

func TestPatternLabel(t *testing.T) {
	cases := map[string]mem.Pattern{
		"contiguous":      mem.ContiguousPattern(),
		"strided:16":      mem.StridedPattern(16),
		"colmajor2d":      mem.ColMajorPattern(),
		"colmajor2d:4x32": {Kind: mem.ColMajor2D, Rows: 4, Cols: 32},
	}
	for want, p := range cases {
		if got := patternLabel(p); got != want {
			t.Errorf("patternLabel(%+v) = %q, want %q", p, got, want)
		}
	}
}

// TestBackgroundWrapsInsideWindow: a window far longer than the array
// walk must keep the background pressure up (the walk wraps) — the
// saturated rung cannot relax toward idle latency mid-window.
func TestBackgroundWrapsInsideWindow(t *testing.T) {
	dev, err := targets.ByID("gpu")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Patterns:   []mem.Pattern{mem.ContiguousPattern()},
		RWRatios:   []float64{1},
		Rates:      []float64{0.25, 1.2},
		ArrayBytes: 256 << 10, // 8192 bursts: far shorter than the window
		WindowTxns: 65536,
		ProbeHops:  128,
	}
	s, err := Generate(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Curves[0]
	low, over := c.Points[0], c.Points[1]
	if over.LatencyNs < 3*low.LatencyNs {
		t.Errorf("over-saturated rung %.1f ns not clearly above low-load %.1f ns — background ran dry",
			over.LatencyNs, low.LatencyNs)
	}
}

// TestGenerateRejectsMisSizedShape: an explicit 2D shape that does not
// cover the array at the device's burst granularity fails fast, naming
// the granule, before any simulation.
func TestGenerateRejectsMisSizedShape(t *testing.T) {
	dev, err := targets.ByID("gpu") // 32-byte bursts
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Patterns = []mem.Pattern{{Kind: mem.ColMajor2D, Rows: 1024, Cols: 1024}}
	_, err = Generate(dev, cfg)
	if err == nil || !strings.Contains(err.Error(), "bursts") {
		t.Errorf("mis-sized shape must fail fast with the granule named, got %v", err)
	}
	// But the granule-independent Validate accepts it (the shape may fit
	// another device's granularity).
	if err := cfg.Validate(); err != nil {
		t.Errorf("granule-independent validation should pass: %v", err)
	}
	bad := smallConfig()
	bad.Patterns = []mem.Pattern{{Kind: mem.Strided}}
	if err := bad.Validate(); err == nil {
		t.Error("zero stride must fail validation")
	}
}
