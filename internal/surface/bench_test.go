package surface

import (
	"testing"

	"mpstream/internal/device/targets"
)

// BenchmarkGenerate measures one default-sized surface on the GPU
// target — the hot path of a /v1/surface cache miss.
func BenchmarkGenerate(b *testing.B) {
	dev, err := targets.ByID("gpu")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{}.WithDefaults()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(dev, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateCurve measures a single small curve, the unit of
// work a DSE knee-objective evaluation adds per design point.
func BenchmarkGenerateCurve(b *testing.B) {
	dev, err := targets.ByID("cpu")
	if err != nil {
		b.Fatal(err)
	}
	cfg := smallConfig()
	cfg.RWRatios = cfg.RWRatios[:1]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(dev, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
