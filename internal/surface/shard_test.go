package surface

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"mpstream/internal/device/targets"
	"mpstream/internal/sim/mem"
)

// shardConfig has enough curves (3 patterns x 2 ratios = 6) to shard
// unevenly while staying fast.
func shardConfig() Config {
	return Config{
		Patterns:   []mem.Pattern{mem.ContiguousPattern(), mem.StridedPattern(16), mem.StridedPattern(64)},
		RWRatios:   []float64{1, 0.5},
		Rates:      []float64{0.25, 0.9},
		ArrayBytes: 4 << 20,
		WindowTxns: 1024,
		ProbeHops:  64,
	}
}

// TestPartitionCurves pins the shard contract: contiguous, covering,
// balanced within one curve.
func TestPartitionCurves(t *testing.T) {
	cfg := shardConfig() // 6 curves
	if got := cfg.CurveCount(); got != 6 {
		t.Fatalf("CurveCount = %d, want 6", got)
	}
	for _, parts := range []int{1, 2, 3, 4, 6, 9} {
		shards := cfg.PartitionCurves(parts)
		want := parts
		if want > 6 {
			want = 6
		}
		if len(shards) != want {
			t.Fatalf("PartitionCurves(%d) made %d shards, want %d", parts, len(shards), want)
		}
		lo := 0
		for i, sh := range shards {
			if sh.Lo != lo {
				t.Fatalf("PartitionCurves(%d) shard %d starts at %d, want %d", parts, i, sh.Lo, lo)
			}
			if d := sh.Size() - shards[len(shards)-1].Size(); d < 0 || d > 1 {
				t.Fatalf("PartitionCurves(%d) unbalanced: %v", parts, shards)
			}
			lo = sh.Hi
		}
		if lo != 6 {
			t.Fatalf("PartitionCurves(%d) covers %d of 6 curves", parts, lo)
		}
	}
}

// TestShardedGenerateMatchesFull: generating every shard independently
// (fresh device instances, as distributed workers would) and merging
// reproduces a single-node Generate byte for byte.
func TestShardedGenerateMatchesFull(t *testing.T) {
	cfg := shardConfig()
	dev, err := targets.ByID("gpu")
	if err != nil {
		t.Fatal(err)
	}
	full, err := Generate(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, parts := range []int{2, 3, 6} {
		var shards []*Surface
		for _, sh := range cfg.PartitionCurves(parts) {
			d, err := targets.ByID("gpu")
			if err != nil {
				t.Fatal(err)
			}
			s, err := GenerateShardWith(context.Background(), d, cfg, sh.Lo, sh.Hi, nil)
			if err != nil {
				t.Fatalf("shard [%d,%d): %v", sh.Lo, sh.Hi, err)
			}
			if len(s.Curves) != sh.Size() {
				t.Fatalf("shard [%d,%d) produced %d curves", sh.Lo, sh.Hi, len(s.Curves))
			}
			shards = append(shards, s)
		}
		merged, err := MergeShards(shards)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(merged, full) {
			wantB, _ := json.Marshal(full)
			gotB, _ := json.Marshal(merged)
			t.Fatalf("%d-way sharded surface diverges from full generate:\n got %s\nwant %s", parts, gotB, wantB)
		}
	}
}

// TestGenerateShardBounds: out-of-grid shard ranges are request errors,
// not panics.
func TestGenerateShardBounds(t *testing.T) {
	cfg := shardConfig()
	dev, err := targets.ByID("gpu")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{-1, 2}, {3, 2}, {0, 7}} {
		if _, err := GenerateShardWith(context.Background(), dev, cfg, r[0], r[1], nil); err == nil {
			t.Errorf("shard [%d,%d) accepted", r[0], r[1])
		}
	}
}

// TestMergeShards edge cases: empty input and nil shards are errors; a
// stopped shard taints the merged surface.
func TestMergeShards(t *testing.T) {
	if _, err := MergeShards(nil); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := MergeShards([]*Surface{{}, nil}); err == nil {
		t.Error("nil shard accepted")
	}
	m, err := MergeShards([]*Surface{{Curves: []Curve{{ReadFrac: 1}}}, {Stopped: "canceled"}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stopped != "canceled" || len(m.Curves) != 1 {
		t.Errorf("merged = %+v", m)
	}
}
