// Package surface generates bandwidth–latency surfaces: the loaded-
// latency characterization that completes a device's memory description
// beyond MP-STREAM's peak-bandwidth numbers.
//
// The methodology (after "A Mess of Memory System Benchmarking,
// Simulation and Application Profiling", arXiv:2405.10170) crosses three
// axes:
//
//   - access pattern of the background traffic (contiguous, strided,
//     column-major — the same mem.Pattern vocabulary as the benchmark);
//   - read/write ratio of the background traffic;
//   - offered injection rate, stepped up a ladder of fractions of the
//     device's peak memory bandwidth.
//
// For every (pattern, ratio) pair the generator sweeps the rate ladder.
// At each rung it drives the device's DRAM model (device.MemorySystem)
// open-loop with background traffic at the offered rate while a serial
// pointer-chase probe (kernel.Chase's request stream, mem.ChaseIter)
// threads through it; the probe's mean round trip is the loaded
// latency. The resulting curve of achieved bandwidth versus loaded
// latency bends sharply where the memory system saturates; the knee —
// the highest bandwidth still delivered at acceptable latency — is the
// scalar the DSE layer can optimize instead of raw GB/s.
//
// Everything is deterministic: the chase walk is an LCG, the read/write
// mix is error diffusion, and the DRAM model is single-threaded — equal
// configurations reproduce equal surfaces, which is what lets the
// service layer cache whole surfaces by request fingerprint.
package surface

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync/atomic"

	"mpstream/internal/device"
	"mpstream/internal/obs"
	"mpstream/internal/report"
	"mpstream/internal/runstate"
	"mpstream/internal/shard"
	"mpstream/internal/sim/dram"
	"mpstream/internal/sim/mem"
)

// Defaults for Config zero values.
const (
	DefaultArrayBytes = 32 << 20
	DefaultWindowTxns = 16384
	DefaultProbeHops  = 256
	DefaultKneeFactor = 2.0
)

// DefaultRates is the injection ladder as fractions of the device's
// peak memory bandwidth. It deliberately crosses 1.0: the territory
// past saturation is where the latency blows up and the knee shows.
func DefaultRates() []float64 { return []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.2} }

// DefaultRWRatios is the read-fraction axis: all-read, 2:1 (triad- and
// add-shaped) and 1:1 (copy-shaped) traffic.
func DefaultRWRatios() []float64 { return []float64{1, 2.0 / 3, 0.5} }

// DefaultPatterns is the background-pattern axis: a streaming walk and
// a row-buffer-hostile strided walk.
func DefaultPatterns() []mem.Pattern {
	return []mem.Pattern{mem.ContiguousPattern(), mem.StridedPattern(16)}
}

// Config parameterizes one surface generation. The zero value measures
// a sensible default surface; WithDefaults resolves it explicitly.
type Config struct {
	// Patterns is the background access-pattern axis; nil means
	// DefaultPatterns.
	Patterns []mem.Pattern `json:"patterns,omitempty"`
	// RWRatios is the read-fraction axis (1 = all reads); nil means
	// DefaultRWRatios.
	RWRatios []float64 `json:"rw_ratios,omitempty"`
	// Rates is the injection ladder, as fractions of the device's peak
	// memory bandwidth; nil means DefaultRates.
	Rates []float64 `json:"rates,omitempty"`
	// ArrayBytes is the footprint of each traffic stream (read array,
	// write array, chase array); 0 means DefaultArrayBytes. Keep it well
	// beyond on-chip caches: the surface characterizes DRAM.
	ArrayBytes int64 `json:"array_bytes,omitempty"`
	// WindowTxns bounds the transactions simulated per ladder point;
	// 0 means DefaultWindowTxns.
	WindowTxns int `json:"window_txns,omitempty"`
	// ProbeHops is the chase length of the idle-latency measurement;
	// 0 means DefaultProbeHops.
	ProbeHops int `json:"probe_hops,omitempty"`
	// KneeFactor defines "acceptable latency": the knee is the highest-
	// bandwidth point whose loaded latency stays within KneeFactor times
	// the idle latency. 0 means DefaultKneeFactor.
	KneeFactor float64 `json:"knee_factor,omitempty"`
}

// WithDefaults resolves zero fields, the canonical form the service
// fingerprints.
func (c Config) WithDefaults() Config {
	if len(c.Patterns) == 0 {
		c.Patterns = DefaultPatterns()
	}
	if len(c.RWRatios) == 0 {
		c.RWRatios = DefaultRWRatios()
	}
	if len(c.Rates) == 0 {
		c.Rates = DefaultRates()
	}
	if c.ArrayBytes == 0 {
		c.ArrayBytes = DefaultArrayBytes
	}
	if c.WindowTxns == 0 {
		c.WindowTxns = DefaultWindowTxns
	}
	if c.ProbeHops == 0 {
		c.ProbeHops = DefaultProbeHops
	}
	if c.KneeFactor == 0 {
		c.KneeFactor = DefaultKneeFactor
	}
	return c
}

// Points returns the number of ladder points the surface will measure.
func (c Config) Points() int {
	c = c.WithDefaults()
	return len(c.Patterns) * len(c.RWRatios) * len(c.Rates)
}

// CurveCount returns the number of curves the surface holds: one per
// (pattern, read-fraction) pair, in pattern-major order — the axis a
// distributed measurement shards along.
func (c Config) CurveCount() int {
	c = c.WithDefaults()
	return len(c.Patterns) * len(c.RWRatios)
}

// Shard is a contiguous run [Lo, Hi) of a surface's curves in
// pattern-major order — the unit a distributed surface splits the
// ladder into.
type Shard = shard.Range

// PartitionCurves splits the curve axis into at most parts contiguous
// shards of near-equal size (differing by at most one curve, larger
// shards first). Concatenating the shards in order covers every curve
// exactly once, so shard generation followed by MergeShards reproduces
// a single-node Generate.
func (c Config) PartitionCurves(parts int) []Shard {
	return shard.Split(c.CurveCount(), parts)
}

// Validate reports configuration errors (after defaulting).
func (c Config) Validate() error {
	c = c.WithDefaults()
	if c.ArrayBytes < 1<<10 {
		return fmt.Errorf("surface: array bytes %d too small to exercise a memory system", c.ArrayBytes)
	}
	for _, r := range c.RWRatios {
		if r < 0 || r > 1 {
			return fmt.Errorf("surface: read fraction %g out of [0,1]", r)
		}
	}
	for _, f := range c.Rates {
		if f <= 0 {
			return fmt.Errorf("surface: injection rate fraction %g must be positive", f)
		}
	}
	if c.WindowTxns < 64 {
		return fmt.Errorf("surface: window of %d transactions too small to measure", c.WindowTxns)
	}
	if c.ProbeHops < 16 {
		return fmt.Errorf("surface: %d probe hops too few to measure idle latency", c.ProbeHops)
	}
	if c.KneeFactor <= 1 {
		return fmt.Errorf("surface: knee factor %g must exceed 1 (it multiplies the idle latency)", c.KneeFactor)
	}
	// The element count is device-dependent (the traffic granule is the
	// DRAM burst size), so only granule-independent pattern properties
	// are checked here; Generate re-validates shapes against the real
	// burst before simulating anything.
	for _, p := range c.Patterns {
		switch p.Kind {
		case mem.Contiguous, mem.ColMajor2D:
		case mem.Strided:
			if p.StrideElems < 1 {
				return fmt.Errorf("surface: stride %d must be >= 1", p.StrideElems)
			}
		default:
			return fmt.Errorf("surface: unknown pattern kind %d", p.Kind)
		}
	}
	return nil
}

// Point is one rung of the injection ladder: offered load in, achieved
// bandwidth and loaded latency out.
type Point struct {
	// Rate is the offered injection rate as a fraction of peak.
	Rate float64 `json:"rate"`
	// OfferedGBps is the offered background load in GB/s.
	OfferedGBps float64 `json:"offered_gbps"`
	// AchievedGBps is the serviced bandwidth (requested bytes over
	// elapsed time, background and probe together).
	AchievedGBps float64 `json:"achieved_gbps"`
	// LatencyNs is the loaded latency: the probe chase's mean round trip.
	LatencyNs float64 `json:"latency_ns"`
	// MaxLatencyNs is the worst probe round trip in the window.
	MaxLatencyNs float64 `json:"max_latency_ns"`
	// RowHitRate and Occupancy expose the mechanism behind the curve:
	// row-buffer locality of the mixed stream and the time-averaged
	// number of in-flight transactions (Little's law).
	RowHitRate float64 `json:"row_hit_rate"`
	Occupancy  float64 `json:"occupancy"`
}

// Knee is the operating point a latency-aware consumer should run at:
// the highest achieved bandwidth whose loaded latency stays within
// KneeFactor times the idle latency.
type Knee struct {
	// Rate, GBps and LatencyNs identify the knee point.
	Rate      float64 `json:"rate"`
	GBps      float64 `json:"gbps"`
	LatencyNs float64 `json:"latency_ns"`
	// Saturated reports that even the lowest rung exceeded the latency
	// bound, so the knee fell back to the lowest-latency point.
	Saturated bool `json:"saturated,omitempty"`
}

// Curve is the ladder for one (pattern, read-fraction) pair.
type Curve struct {
	Pattern mem.Pattern `json:"pattern"`
	// ReadFrac is the background read fraction (1 = all reads).
	ReadFrac float64 `json:"read_frac"`
	// IdleLatencyNs is the unloaded chase round trip — the y-intercept
	// of the curve and the baseline of the knee criterion. The chase is
	// independent of the background pattern and ratio, so every curve
	// of a surface shares one value.
	IdleLatencyNs float64 `json:"idle_latency_ns"`
	Points        []Point `json:"points"`
	Knee          Knee    `json:"knee"`
}

// Surface is a full bandwidth–latency characterization of one device.
type Surface struct {
	Device device.Info `json:"device"`
	Config Config      `json:"config"`
	Curves []Curve     `json:"curves"`
	// Stopped is the canonical partial-result tag (runstate.Canceled or
	// runstate.Deadline) when the generating context ended before the
	// full ladder was measured; empty for a complete surface. A stopped
	// surface carries every rung measured before the stop, with knees
	// detected over the measured points only.
	Stopped string `json:"stopped,omitempty"`
}

// Observer is notified after each measured injection-ladder rung — the
// hook the service layer uses to stream per-point job events. It is
// called from the generating goroutine, in ladder order: rungs may be
// simulated concurrently (each on its own model clone), but observation
// and assembly always follow the deterministic ladder sequence, so a
// parallel generation is indistinguishable from a sequential one.
type Observer func(pat mem.Pattern, readFrac float64, p Point)

// maxWorkers overrides the rung-generation worker count when positive;
// tests pin it to compare sequential and parallel generation directly.
var maxWorkers = 0

func workerCount() int {
	if maxWorkers > 0 {
		return maxWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// Generate measures the surface of dev, which must expose its memory
// system (device.MemorySystem — every simulated target does).
func Generate(dev device.Device, cfg Config) (*Surface, error) {
	return GenerateWith(context.Background(), dev, cfg, nil)
}

// GenerateWith is Generate with the cross-cutting execution concerns
// injected: ctx cancels the measurement between ladder rungs (the
// partial surface collected so far is returned, tagged via Stopped),
// and observe — when non-nil — sees every rung as it lands.
func GenerateWith(ctx context.Context, dev device.Device, cfg Config, observe Observer) (*Surface, error) {
	return GenerateShardWith(ctx, dev, cfg, 0, cfg.CurveCount(), observe)
}

// GenerateShardWith measures only the curves at pattern-major indices
// [lo, hi) of the configuration's curve grid — one worker's share of a
// distributed surface. The idle-latency probe is re-measured per shard;
// the simulator is deterministic, so every shard observes the same
// value and MergeShards reassembles a surface identical to a
// single-node Generate.
func GenerateShardWith(ctx context.Context, dev device.Device, cfg Config, lo, hi int, observe Observer) (*Surface, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if lo < 0 || hi < lo || hi > cfg.CurveCount() {
		return nil, fmt.Errorf("surface: curve shard [%d,%d) out of the %d-curve grid", lo, hi, cfg.CurveCount())
	}
	ms, ok := dev.(device.MemorySystem)
	if !ok {
		return nil, fmt.Errorf("surface: target %q does not expose its memory system", dev.Info().ID)
	}
	model := ms.MemModel()
	info := dev.Info()
	peak := info.PeakMemGBps
	if peak <= 0 {
		peak = model.Config().PeakGBps()
	}
	// Validate shapes against the device's real traffic granule before
	// simulating anything, so a mis-sized explicit 2D shape fails fast.
	elems := int(cfg.ArrayBytes / int64(model.Config().BurstBytes))
	for _, p := range cfg.Patterns {
		if err := p.Validate(elems); err != nil {
			return nil, fmt.Errorf("surface: on %s (%d-byte bursts): %w", info.ID, model.Config().BurstBytes, err)
		}
	}

	// Idle latency: the chase alone, serialized hop by hop. The probe
	// walk is independent of the background pattern and ratio, so one
	// measurement serves every curve.
	burst := model.Config().BurstBytes
	_, isp := obs.StartSpan(ctx, "surface.idle", "hops", strconv.Itoa(cfg.ProbeHops))
	idle := model.ServiceLoaded(nil, chase(elems, burst, cfg.ProbeHops), dram.LoadedOptions{})
	idleNs := idle.ProbeAvgNs()
	isp.End()

	s := &Surface{Device: info, Config: cfg}
	if workers := workerCount(); workers > 1 {
		return generateParallel(ctx, s, model, cfg, lo, hi, peak, idleNs, workers, observe)
	}
	var scr rungScratch
	for pi, pat := range cfg.Patterns {
		for ri, frac := range cfg.RWRatios {
			if ci := pi*len(cfg.RWRatios) + ri; ci < lo || ci >= hi {
				continue
			}
			curve, err := generateCurve(ctx, model, cfg, pat, frac, peak, idleNs, observe, &scr)
			if err != nil {
				return nil, err
			}
			// A curve the cancellation cut before its first rung carries no
			// information; drop it rather than report a bogus zero knee.
			if len(curve.Points) > 0 {
				s.Curves = append(s.Curves, curve)
			}
			if st := runstate.FromContext(ctx); st != "" {
				s.Stopped = st
				return s, nil
			}
		}
	}
	return s, nil
}

// rungJob is one injection-ladder rung of one curve, in ladder order.
type rungJob struct {
	ci   int // curve index in pattern-major order
	pat  mem.Pattern
	frac float64
	rate float64
}

// generateParallel measures a shard's rungs with a worker pool. Every
// rung is an independent simulation (each worker owns a model clone and
// every ServiceLoaded call starts cold), so the rungs of all curves
// fan out freely; the collector then observes and assembles them in
// strict ladder order, which keeps the output — including partial,
// canceled output — identical to the sequential path's.
func generateParallel(ctx context.Context, s *Surface, model *dram.Model, cfg Config, lo, hi int, peak, idleNs float64, workers int, observe Observer) (*Surface, error) {
	var jobs []rungJob
	for pi, pat := range cfg.Patterns {
		for ri, frac := range cfg.RWRatios {
			ci := pi*len(cfg.RWRatios) + ri
			if ci < lo || ci >= hi {
				continue
			}
			for _, rate := range cfg.Rates {
				jobs = append(jobs, rungJob{ci: ci, pat: pat, frac: frac, rate: rate})
			}
		}
	}
	if len(jobs) == 0 {
		return s, nil
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// stop cancels the uncollected tail: on context end or on the first
	// rung error, workers skip their remaining claims.
	ctx2, stop := context.WithCancel(ctx)
	defer stop()

	points := make([]Point, len(jobs))
	measured := make([]bool, len(jobs))
	errs := make([]error, len(jobs))
	done := make([]chan struct{}, len(jobs))
	for i := range done {
		done[i] = make(chan struct{})
	}
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		go func() {
			wm := model.Clone() // worker-private arena: allocation-free rungs
			var scr rungScratch
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if ctx2.Err() == nil {
					_, sp := obs.StartSpan(ctx2, "surface.rung",
						"curve", strconv.Itoa(jobs[i].ci),
						"rate", strconv.FormatFloat(jobs[i].rate, 'g', -1, 64))
					p, err := measureRung(wm, cfg, jobs[i], peak, &scr)
					if err != nil {
						sp.SetAttr("error", err.Error())
						errs[i] = err
						stop()
					} else {
						points[i], measured[i] = p, true
					}
					sp.End()
				}
				close(done[i])
			}
		}()
	}

	// Collect in ladder order: a cancellation (possibly issued by the
	// observer itself) stops collection at the rung boundary, exactly
	// like the sequential path — rungs simulated beyond it are discarded.
	kept := 0
	var firstErr error
	for i := range jobs {
		if ctx.Err() != nil {
			break
		}
		<-done[i]
		if errs[i] != nil {
			firstErr = errs[i]
			break
		}
		if !measured[i] {
			break
		}
		kept = i + 1
		if observe != nil {
			observe(jobs[i].pat, jobs[i].frac, points[i])
		}
	}
	stop()
	for i := range jobs {
		<-done[i] // join: closed channels drain instantly
	}
	if firstErr != nil {
		return nil, firstErr
	}

	for i := 0; i < kept; {
		j := i
		for j < kept && jobs[j].ci == jobs[i].ci {
			j++
		}
		curve := Curve{
			Pattern:       jobs[i].pat,
			ReadFrac:      jobs[i].frac,
			IdleLatencyNs: idleNs,
			Points:        append([]Point(nil), points[i:j]...),
		}
		curve.Knee = detectKnee(curve, cfg.KneeFactor)
		s.Curves = append(s.Curves, curve)
		i = j
	}
	if st := runstate.FromContext(ctx); st != "" {
		s.Stopped = st
	}
	return s, nil
}

// MergeShards reassembles curve shards (in shard order — the order
// PartitionCurves produced them) into one surface. Shards carry the
// device and configuration of their generation; the first shard's are
// taken for the merged surface. A stopped shard marks the whole merged
// surface stopped, since the assembled ladder is partial.
func MergeShards(shards []*Surface) (*Surface, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("surface: no shards to merge")
	}
	out := &Surface{Device: shards[0].Device, Config: shards[0].Config}
	for _, sh := range shards {
		if sh == nil {
			return nil, fmt.Errorf("surface: missing shard in merge")
		}
		out.Curves = append(out.Curves, sh.Curves...)
		if sh.Stopped != "" && out.Stopped == "" {
			out.Stopped = sh.Stopped
		}
	}
	return out, nil
}

// Stream-tag layout of the surface traffic. The write stream reuses the
// benchmark's destination tag so per-stream DRAM placement (FPGA-style
// InterleaveBytes == 0) banks it like a destination array.
const (
	writeStream = 0
	readStream  = 1
	probeStream = 3
)

// rungScratch caches the address-decoded request streams between rung
// measurements, so a ladder sweep pays stream construction and DRAM
// address decode per curve instead of per rung: the background walk is
// redecoded only when the (pattern, read-fraction) pair changes and
// the probe chase never, with both rewound before every rung. The
// generators are deterministic and the decode timing-independent, so a
// rewound stream replays exactly what per-rung construction would
// produce (mem's reset parity and dram's routed parity tests pin
// this), and a scratch-backed sweep reproduces it bit for bit.
type rungScratch struct {
	pat   mem.Pattern
	frac  float64
	bg    *dram.Prerouted
	probe *dram.Prerouted
}

// sources returns the rewound background and probe streams for job,
// rebuilding what the previous rung cannot serve.
func (s *rungScratch) sources(model *dram.Model, cfg Config, job rungJob) (bg, probe *dram.Prerouted, err error) {
	burst := model.Config().BurstBytes
	elems := int(cfg.ArrayBytes / int64(burst))
	if s.probe == nil {
		s.probe = model.Preroute(chase(elems, burst, cfg.WindowTxns), cfg.WindowTxns)
	} else {
		s.probe.Reset()
	}
	if s.bg != nil && job.pat == s.pat && job.frac == s.frac {
		s.bg.Reset()
		return s.bg, s.probe, nil
	}
	// Same-direction scheduling runs mirror the controller's own
	// write-buffering depth, so the mixed stream pays turnarounds at the
	// rate the closed-loop model does.
	mixGroup := model.Config().BatchSize * model.Config().Channels
	src, err := background(job.pat, elems, burst, job.frac, mixGroup)
	if err != nil {
		return nil, nil, err
	}
	// The background wraps endlessly; a window's service consumes at most
	// MaxTxns requests plus one transaction of lookahead.
	s.bg, s.pat, s.frac = model.PrerouteInto(s.bg, src, cfg.WindowTxns+1), job.pat, job.frac
	return s.bg, s.probe, nil
}

// measureRung simulates one injection-ladder rung cold on model: the
// mixed background stream at the rung's offered rate with the probe
// chase threading through it.
func measureRung(model *dram.Model, cfg Config, job rungJob, peakGBps float64, scr *rungScratch) (Point, error) {
	burst := model.Config().BurstBytes
	bg, probe, err := scr.sources(model, cfg, job)
	if err != nil {
		return Point{}, err
	}
	interNs := float64(burst) / (job.rate * peakGBps) // GB/s == B/ns
	res := model.ServiceLoadedRouted(bg, probe, dram.LoadedOptions{
		InterArrivalNs: interNs,
		MaxTxns:        uint64(cfg.WindowTxns),
		// Measure the steady state, not the cold ramp into it.
		WarmupTxns: uint64(cfg.WindowTxns / 4),
	})
	lat, maxLat := res.ProbeAvgNs(), res.ProbeMaxNs
	if res.ProbeTxns == 0 {
		// The system was so congested that not one probe hop finished
		// inside the measured window: the loaded latency is at least
		// the window itself. Report that bound instead of a bogus 0.
		lat = res.Seconds * 1e9
		maxLat = lat
	}
	return Point{
		Rate:         job.rate,
		OfferedGBps:  job.rate * peakGBps,
		AchievedGBps: res.RequestedGBps(),
		LatencyNs:    lat,
		MaxLatencyNs: maxLat,
		RowHitRate:   res.RowHitRate(),
		Occupancy:    res.AvgOccupancy(),
	}, nil
}

// generateCurve measures one (pattern, read-fraction) ladder against
// the shared idle latency, stopping between rungs when ctx ends (the
// caller inspects ctx to tag the partial surface).
func generateCurve(ctx context.Context, model *dram.Model, cfg Config, pat mem.Pattern, readFrac, peakGBps, idleNs float64, observe Observer, scr *rungScratch) (Curve, error) {
	curve := Curve{Pattern: pat, ReadFrac: readFrac, IdleLatencyNs: idleNs}
	for _, rate := range cfg.Rates {
		if ctx.Err() != nil {
			break
		}
		_, sp := obs.StartSpan(ctx, "surface.rung",
			"rate", strconv.FormatFloat(rate, 'g', -1, 64),
			"read_frac", strconv.FormatFloat(readFrac, 'g', -1, 64))
		p, err := measureRung(model, cfg, rungJob{pat: pat, frac: readFrac, rate: rate}, peakGBps, scr)
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			return Curve{}, err
		}
		sp.End()
		curve.Points = append(curve.Points, p)
		if observe != nil {
			observe(pat, readFrac, p)
		}
	}
	curve.Knee = detectKnee(curve, cfg.KneeFactor)
	return curve, nil
}

// chase builds the probe walk: hops covers both the idle measurement
// and a whole loaded window (the probe chain never runs dry before the
// window's transaction budget is spent).
func chase(elems int, burst uint32, hops int) *mem.ChaseIter {
	// The chase array lives far from the traffic arrays (stream bases are
	// 2 GiB apart, see device.StreamBases).
	ch, err := mem.NewChaseIter(uint64(probeStream)<<31, elems, burst, hops, probeStream)
	if err != nil {
		// Unreachable: elems and burst were validated.
		panic(err)
	}
	return ch
}

// background assembles the mixed read/write traffic for one curve.
// Each direction's walk wraps around when it reaches the end of its
// array, so the background can never run dry inside a measurement
// window and dilute the loaded latency toward idle.
func background(pat mem.Pattern, elems int, burst uint32, readFrac float64, mixGroup int) (mem.Source, error) {
	reads, err := mem.NewIter(pat, uint64(readStream)<<31, elems, burst, mem.Read, readStream)
	if err != nil {
		return nil, err
	}
	if readFrac >= 1 {
		return repeat{reads}, nil
	}
	writes, err := mem.NewIter(pat, uint64(writeStream)<<31, elems, burst, mem.Write, writeStream)
	if err != nil {
		return nil, err
	}
	if readFrac <= 0 {
		return repeat{writes}, nil
	}
	return mem.NewMix(repeat{reads}, repeat{writes}, readFrac, mixGroup), nil
}

// repeat cycles a resettable walk forever; the measurement window
// (LoadedOptions.MaxTxns) bounds the run instead.
type repeat struct{ it *mem.Iter }

// Remaining reports a window-dwarfing count (the walk never drains).
func (r repeat) Remaining() int { return math.MaxInt }

// Reset rewinds the cycling walk to its start.
func (r repeat) Reset() { r.it.Reset() }

// Next emits the next request, rewinding at the end of the walk.
func (r repeat) Next() (mem.Request, bool) {
	req, ok := r.it.Next()
	if !ok {
		r.it.Reset()
		req, ok = r.it.Next()
	}
	return req, ok
}

// NextBatch bulk-emits the cycling walk (mem.Batcher), rewinding at
// each wrap so the stream never reports exhaustion.
func (r repeat) NextBatch(dst []mem.Request) int {
	n := 0
	for n < len(dst) {
		got := r.it.NextBatch(dst[n:])
		if got == 0 {
			r.it.Reset()
			if got = r.it.NextBatch(dst[n:]); got == 0 {
				break
			}
		}
		n += got
	}
	return n
}

// detectKnee picks the highest-bandwidth point within the latency
// budget, falling back to the lowest-latency point when the whole
// ladder blew past it.
func detectKnee(c Curve, factor float64) Knee {
	budget := factor * c.IdleLatencyNs
	best := -1
	for i, p := range c.Points {
		if p.LatencyNs > budget {
			continue
		}
		if best < 0 || p.AchievedGBps > c.Points[best].AchievedGBps {
			best = i
		}
	}
	if best >= 0 {
		p := c.Points[best]
		return Knee{Rate: p.Rate, GBps: p.AchievedGBps, LatencyNs: p.LatencyNs}
	}
	// Saturated from the first rung: report the gentlest point.
	for i, p := range c.Points {
		if best < 0 || p.LatencyNs < c.Points[best].LatencyNs {
			best = i
		}
	}
	if best < 0 {
		return Knee{Saturated: true}
	}
	p := c.Points[best]
	return Knee{Rate: p.Rate, GBps: p.AchievedGBps, LatencyNs: p.LatencyNs, Saturated: true}
}

// KneeGBps returns the knee bandwidth of curve i, or 0.
func (s *Surface) KneeGBps(i int) float64 {
	if i < 0 || i >= len(s.Curves) {
		return 0
	}
	return s.Curves[i].Knee.GBps
}

// MinKneeGBps returns the most conservative knee over all curves — the
// bandwidth the device sustains at acceptable latency under its least
// favourable measured traffic. It is the scalar the DSE layer ranks by
// under the "knee" objective.
func (s *Surface) MinKneeGBps() float64 {
	min := 0.0
	for i, c := range s.Curves {
		if i == 0 || c.Knee.GBps < min {
			min = c.Knee.GBps
		}
	}
	return min
}

// FindCurve returns the curve whose pattern label and read fraction
// match, for diffing surfaces measured from the same ladder config
// (the baseline checker matches curves this way because labels — not
// mem.Pattern structs — are what a stored reference round-trips).
func (s *Surface) FindCurve(patternLabel string, readFrac float64) (Curve, bool) {
	for _, c := range s.Curves {
		if PatternLabel(c.Pattern) == patternLabel && c.ReadFrac == readFrac {
			return c, true
		}
	}
	return Curve{}, false
}

// Table renders the surface as one table, the shared shape of the
// mpsurf text/markdown/CSV output and of docs examples.
func (s *Surface) Table() *report.Table {
	tb := report.NewTable("pattern", "read frac", "rate", "offered GB/s",
		"achieved GB/s", "latency ns", "max ns", "row hit", "knee")
	for _, c := range s.Curves {
		for _, p := range c.Points {
			kneeMark := ""
			if p.Rate == c.Knee.Rate {
				kneeMark = "*"
			}
			tb.AddRowf(patternLabel(c.Pattern), c.ReadFrac, p.Rate, p.OfferedGBps,
				p.AchievedGBps, p.LatencyNs, p.MaxLatencyNs, p.RowHitRate, kneeMark)
		}
	}
	return tb
}

// KneeTable summarizes one row per curve.
func (s *Surface) KneeTable() *report.Table {
	tb := report.NewTable("pattern", "read frac", "idle ns", "knee rate",
		"knee GB/s", "knee ns", "saturated")
	for _, c := range s.Curves {
		tb.AddRowf(patternLabel(c.Pattern), c.ReadFrac, c.IdleLatencyNs,
			c.Knee.Rate, c.Knee.GBps, c.Knee.LatencyNs, fmt.Sprintf("%v", c.Knee.Saturated))
	}
	return tb
}

// Chart renders one curve as an ASCII bandwidth-versus-latency plot.
func (c Curve) Chart() *report.Chart {
	ch := &report.Chart{
		Title:  fmt.Sprintf("loaded latency — %s, %.0f%% reads", patternLabel(c.Pattern), c.ReadFrac*100),
		XLabel: "achieved GB/s",
		YLabel: "latency ns",
		LogY:   true,
	}
	x := make([]float64, len(c.Points))
	y := make([]float64, len(c.Points))
	for i, p := range c.Points {
		x[i], y[i] = p.AchievedGBps, p.LatencyNs
	}
	ch.Add(report.Series{Name: "loaded", X: x, Y: y})
	return ch
}

// PatternLabel renders a pattern compactly ("contiguous", "strided:16")
// — the label vocabulary tables, charts and job events share.
func PatternLabel(p mem.Pattern) string { return patternLabel(p) }

// patternLabel renders a pattern compactly ("contiguous", "strided:16").
func patternLabel(p mem.Pattern) string {
	switch p.Kind {
	case mem.Strided:
		return fmt.Sprintf("strided:%d", p.StrideElems)
	case mem.ColMajor2D:
		if p.Rows > 0 && p.Cols > 0 {
			return fmt.Sprintf("colmajor2d:%dx%d", p.Rows, p.Cols)
		}
		return "colmajor2d"
	default:
		return p.Kind.String()
	}
}
