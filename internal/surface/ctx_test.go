package surface

import (
	"context"
	"testing"

	"mpstream/internal/device/targets"
	"mpstream/internal/runstate"
	"mpstream/internal/sim/mem"
)

func ctxTestConfig() Config {
	return Config{
		Patterns:   []mem.Pattern{mem.ContiguousPattern()},
		RWRatios:   []float64{1, 0.5},
		Rates:      []float64{0.25, 0.5, 1.0},
		ArrayBytes: 4 << 20,
		WindowTxns: 256,
		ProbeHops:  32,
	}
}

// TestGenerateWithObserver: the observer sees every ladder rung, in
// measurement order, and a complete surface carries no stop tag.
func TestGenerateWithObserver(t *testing.T) {
	dev, err := targets.ByID("gpu")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ctxTestConfig()
	var rungs int
	s, err := GenerateWith(context.Background(), dev, cfg, func(_ mem.Pattern, _ float64, p Point) {
		rungs++
		if p.AchievedGBps <= 0 {
			t.Errorf("observed rung with no bandwidth: %+v", p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stopped != "" {
		t.Fatalf("complete surface tagged %q", s.Stopped)
	}
	if want := cfg.Points(); rungs != want {
		t.Errorf("observer saw %d rungs, want %d", rungs, want)
	}
}

// TestGenerateWithCancelMidLadder: canceling from the observer stops
// between rungs; the partial surface keeps the measured rungs, detects
// knees over them, and is tagged canceled.
func TestGenerateWithCancelMidLadder(t *testing.T) {
	dev, err := targets.ByID("gpu")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ctxTestConfig()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rungs := 0
	s, err := GenerateWith(ctx, dev, cfg, func(_ mem.Pattern, _ float64, _ Point) {
		rungs++
		if rungs == 2 {
			cancel()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stopped != runstate.Canceled {
		t.Fatalf("stopped = %q, want %q", s.Stopped, runstate.Canceled)
	}
	measured := 0
	for _, c := range s.Curves {
		if len(c.Points) == 0 {
			t.Error("partial surface kept an empty curve")
		}
		measured += len(c.Points)
		if c.Knee.GBps <= 0 && !c.Knee.Saturated {
			t.Errorf("partial curve lost its knee: %+v", c.Knee)
		}
	}
	if measured != 2 {
		t.Errorf("partial surface kept %d rungs, want the 2 measured before the cancel", measured)
	}
}

// TestGenerateWithPreCanceled: an already-canceled context measures
// nothing but still returns a tagged (empty) surface rather than an
// error.
func TestGenerateWithPreCanceled(t *testing.T) {
	dev, err := targets.ByID("gpu")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := GenerateWith(ctx, dev, ctxTestConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stopped != runstate.Canceled || len(s.Curves) != 0 {
		t.Errorf("pre-canceled surface = stopped %q, %d curves", s.Stopped, len(s.Curves))
	}
}
