package surface

// Concurrency tests, meant to run under -race: the parallel rung
// fan-out must be data-race free and indistinguishable from the
// sequential ladder, whatever the worker count.

import (
	"reflect"
	"sync"
	"testing"

	"mpstream/internal/device/targets"
)

func TestParallelGenerateMatchesSequential(t *testing.T) {
	dev, err := targets.ByID("gpu")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	gen := func(workers int) *Surface {
		defer func(prev int) { maxWorkers = prev }(maxWorkers)
		maxWorkers = workers
		s, err := Generate(dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	seq := gen(1)
	for _, workers := range []int{2, 4} {
		if got := gen(workers); !reflect.DeepEqual(got, seq) {
			t.Fatalf("%d-worker surface differs from sequential", workers)
		}
	}
}

func TestConcurrentGenerate(t *testing.T) {
	// Whole surfaces generated concurrently against one target: each
	// Generate builds its own model but shares the target registry and
	// the parallel fan-out machinery.
	cfg := smallConfig()
	dev, err := targets.ByID("gpu")
	if err != nil {
		t.Fatal(err)
	}
	want, err := Generate(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got, err := Generate(dev, cfg)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("worker %d produced a different surface", w)
			}
		}(w)
	}
	wg.Wait()
}
