// Package core implements the MP-STREAM benchmark itself: the paper's
// four kernels run over its full tuning-parameter space, with STREAM's
// measurement conventions.
//
// A Config captures every knob from Section III of the paper — array
// size, data type, degree of vectorization, access pattern, kernel loop
// management, unroll factor, work-group size, vendor attributes, and the
// stream source/destination (device DRAM vs. host over PCIe). Run
// executes the configuration on one device through the cl runtime:
// NTIMES repetitions, best time excluding the first iteration, bandwidth
// with STREAM byte accounting (2x array bytes for copy/scale, 3x for
// add/triad), and elementwise verification of the results.
package core

import (
	"context"
	"fmt"
	"math"

	"mpstream/internal/cl"
	"mpstream/internal/device"
	"mpstream/internal/fabric"
	"mpstream/internal/kernel"
	"mpstream/internal/obs"
	"mpstream/internal/sim/mem"
	"mpstream/internal/stats"
	"mpstream/internal/surface"
)

// Default measurement constants, matching STREAM's conventions.
const (
	DefaultNTimes = 3
	DefaultScalar = 3.0
	// Initialization constants for the source arrays. Both are integers
	// so int and double runs verify exactly against the same expectation.
	BInit = 2.0
	CInit = 5.0
)

// Config is one fully specified MP-STREAM run.
type Config struct {
	// Ops selects the kernels; nil means all four.
	Ops []kernel.Op `json:"ops,omitempty"`
	// ArrayBytes is the size of each array operand.
	ArrayBytes int64 `json:"array_bytes"`
	// Type is the element type (int or double).
	Type kernel.DataType `json:"type"`
	// VecWidth is the OpenCL vector width (1..16).
	VecWidth int `json:"vec_width"`
	// Loop is the kernel loop management; ignored when OptimalLoop is set.
	Loop kernel.LoopMode `json:"loop"`
	// OptimalLoop selects each device's best loop management (Figure 3):
	// NDRange on CPU/GPU, flat on AOCL, nested on SDAccel.
	OptimalLoop bool `json:"optimal_loop"`
	// Attrs carries unroll, work-group and vendor attributes.
	Attrs kernel.Attrs `json:"attrs"`
	// Pattern is the data access pattern.
	Pattern mem.Pattern `json:"pattern"`
	// NTimes is the repetition count; the best time excludes the first
	// (cold) iteration when NTimes > 1. Zero means DefaultNTimes.
	NTimes int `json:"ntimes"`
	// Scalar is q in scale/triad; zero means DefaultScalar.
	Scalar float64 `json:"scalar"`
	// Verify enables functional execution and result checking. Disable
	// only for sweeps over arrays too large to materialize.
	Verify bool `json:"verify"`
	// HostIO measures the host<->device path: each iteration re-writes
	// the source arrays over the link and reads the result back, and the
	// timed interval covers transfers plus kernel (the paper's
	// "source/destination of streams" parameter).
	HostIO bool `json:"host_io"`
}

// DefaultConfig returns the paper's baseline: all four kernels on 4 MB
// int arrays, contiguous, scalar width, optimal loop management, verified.
func DefaultConfig() Config {
	return Config{
		ArrayBytes:  4 << 20,
		Type:        kernel.Int32,
		VecWidth:    1,
		OptimalLoop: true,
		Pattern:     mem.ContiguousPattern(),
		NTimes:      DefaultNTimes,
		Scalar:      DefaultScalar,
		Verify:      true,
	}
}

// withDefaults fills zero fields. An empty Ops slice means "all four"
// just like nil — JSON decodes "ops": [] to an empty non-nil slice.
func (c Config) withDefaults() Config {
	if len(c.Ops) == 0 {
		c.Ops = kernel.Ops()
	}
	if c.NTimes == 0 {
		c.NTimes = DefaultNTimes
	}
	if c.Scalar == 0 {
		c.Scalar = DefaultScalar
	}
	if c.VecWidth == 0 {
		c.VecWidth = 1
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.ArrayBytes <= 0 {
		return fmt.Errorf("core: array bytes %d must be positive", c.ArrayBytes)
	}
	if c.NTimes < 1 {
		return fmt.Errorf("core: ntimes %d must be >= 1", c.NTimes)
	}
	k := c.kernelFor(c.Ops[0], kernel.NDRange)
	if c.ArrayBytes%int64(k.ElemBytes()) != 0 {
		return fmt.Errorf("core: array bytes %d not a multiple of element size %d",
			c.ArrayBytes, k.ElemBytes())
	}
	elems := int(c.ArrayBytes / int64(k.ElemBytes()))
	return c.Pattern.Validate(elems)
}

// kernelFor assembles the kernel IR for one op.
func (c Config) kernelFor(op kernel.Op, loop kernel.LoopMode) kernel.Kernel {
	if !c.OptimalLoop {
		loop = c.Loop
	}
	return kernel.Kernel{Op: op, Type: c.Type, VecWidth: c.VecWidth, Loop: loop, Attrs: c.Attrs}
}

// KernelResult is the measurement for one of the four kernels.
type KernelResult struct {
	Op         kernel.Op `json:"op"`
	Kernel     string    `json:"kernel"`      // kernel identifier (Name of the IR)
	BytesMoved int64     `json:"bytes_moved"` // STREAM-convention bytes per iteration

	Times       []float64 `json:"times"`        // per-iteration seconds, in order
	BestSeconds float64   `json:"best_seconds"` // min time, excluding iteration 0 when possible
	AvgSeconds  float64   `json:"avg_seconds"`
	GBps        float64   `json:"gbps"`     // bandwidth at the best time, 1e9 bytes/s
	Verified    bool      `json:"verified"` // result checked elementwise
}

// KBps returns the bandwidth in the KB/s (1e3) unit Figures 3 and 4(a) use.
func (r KernelResult) KBps() float64 { return r.GBps * 1e6 }

// MBps returns the bandwidth in MB/s (1e6), classic STREAM's unit.
func (r KernelResult) MBps() float64 { return r.GBps * 1e3 }

// Result is one full MP-STREAM run on one device.
type Result struct {
	Device  device.Info    `json:"device"`
	Config  Config         `json:"config"`
	Kernels []KernelResult `json:"kernels"`

	// FPGA build artefacts (zero/false elsewhere).
	Resources    fabric.Resources `json:"resources"`
	HasResources bool             `json:"has_resources"`
	FmaxMHz      float64          `json:"fmax_mhz,omitempty"`
}

// Kernel returns the result for op, or nil.
func (r *Result) Kernel(op kernel.Op) *KernelResult {
	for i := range r.Kernels {
		if r.Kernels[i].Op == op {
			return &r.Kernels[i]
		}
	}
	return nil
}

// Run executes the configuration on dev. The device is reset to cold
// state first; warm-cache effects across the NTIMES repetitions are part
// of the measurement, exactly as on hardware.
func Run(dev device.Device, cfg Config) (*Result, error) {
	return RunContext(context.Background(), dev, cfg)
}

// RunContext is Run under a context: cancellation is checked between
// kernels and between repetitions, and a canceled or deadline-expired
// run returns the context's error (a single run is one evaluation unit
// — its partial timings are not a usable result, so partial-result
// semantics live in the multi-point layers above: dse, search,
// surface, service).
func RunContext(ctx context.Context, dev device.Device, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	evalStart := obs.EvalStart()
	dev.Reset()

	clctx := cl.CreateContext(dev)
	clctx.Functional = cfg.Verify
	queue := clctx.CreateCommandQueue()
	prog := clctx.CreateProgram()

	elems := int(cfg.ArrayBytes / int64(cfg.Type.Bytes()))
	a, err := clctx.CreateBuffer(cfg.Type, elems)
	if err != nil {
		return nil, err
	}
	b, err := clctx.CreateBuffer(cfg.Type, elems)
	if err != nil {
		return nil, err
	}
	cbuf, err := clctx.CreateBuffer(cfg.Type, elems)
	if err != nil {
		return nil, err
	}
	b.Fill(BInit)
	cbuf.Fill(CInit)

	// Host mirrors for HostIO mode.
	var hostB, hostC, hostA any
	if cfg.HostIO && cfg.Verify {
		hostB, hostC, hostA = newHost(cfg.Type, elems, BInit), newHost(cfg.Type, elems, CInit), newHost(cfg.Type, elems, 0)
	}

	res := &Result{Device: dev.Info(), Config: cfg}
	for _, op := range cfg.Ops {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		spec := cfg.kernelFor(op, dev.Info().OptimalLoop)
		k, err := prog.BuildKernel(spec)
		if err != nil {
			return nil, err
		}
		var carg *cl.Buffer
		if op.InputStreams() == 2 {
			carg = cbuf
		}
		if err := k.SetArgs(a, b, carg, cfg.Scalar); err != nil {
			return nil, err
		}
		if !res.HasResources {
			if r, ok := k.Compiled().Resources(); ok {
				res.Resources, res.HasResources = r, true
				res.FmaxMHz, _ = k.Compiled().FmaxMHz()
			}
		}

		kr := KernelResult{
			Op:         op,
			Kernel:     spec.Name(),
			BytesMoved: op.BytesMoved(cfg.ArrayBytes),
		}
		for iter := 0; iter < cfg.NTimes; iter++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			start := queue.Now()
			if cfg.HostIO {
				if _, err := queue.EnqueueWriteBuffer(b, hostB); err != nil {
					return nil, err
				}
				if carg != nil {
					if _, err := queue.EnqueueWriteBuffer(cbuf, hostC); err != nil {
						return nil, err
					}
				}
			}
			if _, err := queue.EnqueueKernel(k, cfg.Pattern); err != nil {
				return nil, err
			}
			if cfg.HostIO {
				if _, err := queue.EnqueueReadBuffer(a, hostA); err != nil {
					return nil, err
				}
			}
			end := queue.Finish()
			kr.Times = append(kr.Times, (end - start).Seconds())
		}

		kr.BestSeconds = bestTime(kr.Times)
		s, err := stats.Summarize(kr.Times)
		if err != nil {
			return nil, err
		}
		kr.AvgSeconds = s.Mean
		if kr.BestSeconds > 0 {
			kr.GBps = float64(kr.BytesMoved) / kr.BestSeconds / 1e9
		}

		if cfg.Verify {
			want := kernel.Expected(op, cfg.Scalar, BInit, CInit)
			if err := VerifySlice(a.Data(), want, 0); err != nil {
				return nil, fmt.Errorf("core: %s on %s failed validation: %w",
					spec.Name(), dev.Info().ID, err)
			}
			kr.Verified = true
		}
		res.Kernels = append(res.Kernels, kr)
	}
	obs.EvalDone(evalStart)
	return res, nil
}

// RunSurface measures dev's bandwidth–latency surface: the loaded-
// latency characterization the surface package generates from the
// device's memory model, entered through the same device plumbing as
// Run (cold state, validated configuration). The device must expose its
// memory system (device.MemorySystem); every simulated target does.
func RunSurface(dev device.Device, cfg surface.Config) (*surface.Surface, error) {
	return RunSurfaceWith(context.Background(), dev, cfg, nil)
}

// RunSurfaceContext is RunSurface under a context: the injection-rate
// ladder stops between rungs when ctx ends and the partial surface is
// returned with its Stopped tag set (see surface.GenerateWith).
func RunSurfaceContext(ctx context.Context, dev device.Device, cfg surface.Config) (*surface.Surface, error) {
	return RunSurfaceWith(ctx, dev, cfg, nil)
}

// RunSurfaceWith is RunSurfaceContext with a per-rung observer — the
// hook the service layer uses to stream surface job events.
func RunSurfaceWith(ctx context.Context, dev device.Device, cfg surface.Config, observe surface.Observer) (*surface.Surface, error) {
	return RunSurfaceShard(ctx, dev, cfg, 0, cfg.CurveCount(), observe)
}

// RunSurfaceShard is RunSurfaceWith restricted to the curves at
// pattern-major indices [lo, hi) — one worker's share of a distributed
// surface measurement (see surface.GenerateShardWith).
func RunSurfaceShard(ctx context.Context, dev device.Device, cfg surface.Config, lo, hi int, observe surface.Observer) (*surface.Surface, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dev.Reset()
	return surface.GenerateShardWith(ctx, dev, cfg, lo, hi, observe)
}

// SurfaceProbe derives the small single-curve surface configuration the
// DSE layer measures per design point under the "knee" objective: the
// point's own access pattern, the read fraction of its kernel op, and a
// short injection ladder. It is deliberately cheap — an optimizer
// evaluates it once per unique configuration.
func (c Config) SurfaceProbe() surface.Config {
	c = c.withDefaults()
	op := c.Ops[0]
	// The probe walks its own fixed footprint, so an explicit 2D shape
	// sized for the benchmark arrays cannot carry over; let the probe
	// derive a near-square shape for its element count instead.
	pat := c.Pattern
	if pat.Kind == mem.ColMajor2D {
		pat.Rows, pat.Cols = 0, 0
	}
	return surface.Config{
		Patterns: []mem.Pattern{pat},
		RWRatios: []float64{float64(op.InputStreams()) / float64(op.Streams())},
		Rates:    []float64{0.25, 0.5, 0.75, 0.9, 1.0},
		// The probe characterizes DRAM under the configuration's walk; a
		// fixed multi-megabyte footprint keeps it comparable across
		// array sizes and safely beyond on-chip caches.
		ArrayBytes: 8 << 20,
		WindowTxns: 2048,
		ProbeHops:  128,
	}
}

// KneeGBps measures the surface-knee bandwidth of cfg on dev: the
// bandwidth the memory system sustains at acceptable loaded latency
// under traffic shaped like cfg (SurfaceProbe). It is the alternative
// DSE objective — configurations that look fast under pure throughput
// but congest the memory system rank lower here.
func KneeGBps(dev device.Device, cfg Config) (float64, error) {
	s, err := RunSurface(dev, cfg.SurfaceProbe())
	if err != nil {
		return 0, err
	}
	return s.MinKneeGBps(), nil
}

// bestTime is STREAM's convention: the minimum over iterations, excluding
// the first (cold) one when more than one was run.
func bestTime(times []float64) float64 {
	if len(times) == 0 {
		return 0
	}
	considered := times
	if len(times) > 1 {
		considered = times[1:]
	}
	best := considered[0]
	for _, t := range considered[1:] {
		if t < best {
			best = t
		}
	}
	return best
}

func newHost(dt kernel.DataType, elems int, v float64) any {
	switch dt {
	case kernel.Float64:
		s := make([]float64, elems)
		for i := range s {
			s[i] = v
		}
		return s
	default:
		s := make([]int32, elems)
		for i := range s {
			s[i] = int32(v)
		}
		return s
	}
}

// VerifySlice checks that every element of data ([]int32 or []float64)
// equals want within tol (absolute). A nil slice (timing-only run) is an
// error: verification requires functional execution.
func VerifySlice(data any, want, tol float64) error {
	switch d := data.(type) {
	case []int32:
		w := int32(want)
		for i, v := range d {
			if v != w {
				return fmt.Errorf("element %d = %d, want %d", i, v, w)
			}
		}
		return nil
	case []float64:
		for i, v := range d {
			if math.Abs(v-want) > tol {
				return fmt.Errorf("element %d = %g, want %g", i, v, want)
			}
		}
		return nil
	case nil:
		return fmt.Errorf("no data to verify (timing-only run)")
	default:
		return fmt.Errorf("unsupported data type %T", data)
	}
}
