package core

import (
	"strings"
	"testing"

	"mpstream/internal/device"
	"mpstream/internal/device/targets"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/mem"
	"mpstream/internal/stats"
	"mpstream/internal/surface"
)

func dev(t *testing.T, id string) device.Device {
	t.Helper()
	d, err := targets.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero bytes", func(c *Config) { c.ArrayBytes = 0 }},
		{"negative ntimes", func(c *Config) { c.NTimes = -1 }},
		{"unaligned", func(c *Config) { c.ArrayBytes = 1001 }},
		{"bad pattern", func(c *Config) { c.Pattern = mem.StridedPattern(-2) }},
		{"vec misalign", func(c *Config) { c.VecWidth = 16; c.ArrayBytes = 96 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
}

func TestRunAllKernelsGPU(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ArrayBytes = 1 << 20
	res, err := Run(dev(t, "gpu"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kernels) != 4 {
		t.Fatalf("got %d kernel results, want 4", len(res.Kernels))
	}
	for _, kr := range res.Kernels {
		if !kr.Verified {
			t.Errorf("%v not verified", kr.Op)
		}
		if kr.GBps <= 0 {
			t.Errorf("%v bandwidth = %v", kr.Op, kr.GBps)
		}
		if len(kr.Times) != DefaultNTimes {
			t.Errorf("%v ran %d times, want %d", kr.Op, len(kr.Times), DefaultNTimes)
		}
		wantBytes := kr.Op.BytesMoved(cfg.ArrayBytes)
		if kr.BytesMoved != wantBytes {
			t.Errorf("%v bytes = %d, want %d", kr.Op, kr.BytesMoved, wantBytes)
		}
	}
	if res.HasResources {
		t.Error("GPU run must not report FPGA resources")
	}
	if res.Device.ID != "gpu" {
		t.Errorf("device id = %q", res.Device.ID)
	}
}

func TestRunFPGAReportsResources(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ops = []kernel.Op{kernel.Copy}
	cfg.ArrayBytes = 1 << 20
	res, err := Run(dev(t, "aocl"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasResources || res.Resources.Logic <= 0 {
		t.Error("AOCL run must report synthesis resources")
	}
	if res.FmaxMHz <= 0 {
		t.Error("AOCL run must report fmax")
	}
}

func TestByteAccounting(t *testing.T) {
	// STREAM convention: copy/scale move 2x, add/triad 3x.
	cfg := DefaultConfig()
	cfg.ArrayBytes = 1 << 20
	res, err := Run(dev(t, "cpu"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel(kernel.Copy).BytesMoved != 2<<20 {
		t.Error("copy bytes wrong")
	}
	if res.Kernel(kernel.Triad).BytesMoved != 3<<20 {
		t.Error("triad bytes wrong")
	}
}

func TestBestTimeExcludesColdRun(t *testing.T) {
	if got := bestTime([]float64{5, 2, 3}); got != 2 {
		t.Errorf("bestTime = %v, want 2", got)
	}
	// The first (cold) iteration is excluded even if fastest.
	if got := bestTime([]float64{1, 2, 3}); got != 2 {
		t.Errorf("bestTime = %v, want 2 (exclude cold)", got)
	}
	if got := bestTime([]float64{7}); got != 7 {
		t.Errorf("single-run bestTime = %v, want 7", got)
	}
	if got := bestTime(nil); got != 0 {
		t.Errorf("empty bestTime = %v, want 0", got)
	}
}

func TestWarmCacheShowsInTimes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ops = []kernel.Op{kernel.Copy}
	cfg.ArrayBytes = 2 << 20 // LLC-resident on the CPU
	res, err := Run(dev(t, "cpu"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	times := res.Kernel(kernel.Copy).Times
	if times[1] >= times[0] {
		t.Errorf("warm iteration (%.3g) must beat cold (%.3g) on a cache-resident array",
			times[1], times[0])
	}
}

func TestVerifySlice(t *testing.T) {
	if err := VerifySlice([]int32{3, 3, 3}, 3, 0); err != nil {
		t.Errorf("valid int slice rejected: %v", err)
	}
	if err := VerifySlice([]int32{3, 4, 3}, 3, 0); err == nil {
		t.Error("corrupted int slice accepted")
	}
	if err := VerifySlice([]float64{2.5, 2.5}, 2.5, 0); err != nil {
		t.Errorf("valid float slice rejected: %v", err)
	}
	if err := VerifySlice([]float64{2.5, 2.6}, 2.5, 0.01); err == nil {
		t.Error("out-of-tolerance float accepted")
	}
	if err := VerifySlice([]float64{2.5, 2.6}, 2.5, 0.2); err != nil {
		t.Errorf("within-tolerance float rejected: %v", err)
	}
	if err := VerifySlice(nil, 0, 0); err == nil {
		t.Error("nil data accepted")
	}
	if err := VerifySlice("nope", 0, 0); err == nil {
		t.Error("bad type accepted")
	}
	if err := VerifySlice([]int32{2, 3}, 3, 0); err == nil ||
		!strings.Contains(err.Error(), "element 0") {
		t.Errorf("error must name the element: %v", err)
	}
}

func TestTimingOnlyRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Verify = false
	cfg.Ops = []kernel.Op{kernel.Copy}
	cfg.ArrayBytes = 64 << 20
	res, err := Run(dev(t, "gpu"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	kr := res.Kernel(kernel.Copy)
	if kr.Verified {
		t.Error("timing-only run must not claim verification")
	}
	if kr.GBps <= 0 {
		t.Error("timing-only run must still measure bandwidth")
	}
}

func TestHostIOSlowerThanDevice(t *testing.T) {
	base := DefaultConfig()
	base.Ops = []kernel.Op{kernel.Copy}
	base.ArrayBytes = 16 << 20
	onDev, err := Run(dev(t, "gpu"), base)
	if err != nil {
		t.Fatal(err)
	}
	base.HostIO = true
	hostIO, err := Run(dev(t, "gpu"), base)
	if err != nil {
		t.Fatal(err)
	}
	devBW := onDev.Kernel(kernel.Copy).GBps
	hostBW := hostIO.Kernel(kernel.Copy).GBps
	if hostBW >= devBW/3 {
		t.Errorf("host-IO bandwidth (%.1f) must be PCIe-bound, device-only was %.1f", hostBW, devBW)
	}
	// PCIe-bound copy cannot exceed the link bandwidth.
	if hostBW > 11.5 {
		t.Errorf("host-IO bandwidth %.1f exceeds the 11 GB/s link", hostBW)
	}
}

func TestHostIOVerifies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HostIO = true
	cfg.ArrayBytes = 1 << 20
	res, err := Run(dev(t, "gpu"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, kr := range res.Kernels {
		if !kr.Verified {
			t.Errorf("%v not verified in host-IO mode", kr.Op)
		}
	}
}

func TestDoubleTypeRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Type = kernel.Float64
	cfg.ArrayBytes = 1 << 20
	res, err := Run(dev(t, "aocl"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, kr := range res.Kernels {
		if !kr.Verified {
			t.Errorf("%v double run not verified", kr.Op)
		}
	}
}

func TestStridedRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pattern = mem.ColMajorPattern()
	cfg.Ops = []kernel.Op{kernel.Copy}
	cfg.ArrayBytes = 4 << 20
	strided, err := Run(dev(t, "gpu"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pattern = mem.ContiguousPattern()
	contig, err := Run(dev(t, "gpu"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strided.Kernel(kernel.Copy).GBps >= contig.Kernel(kernel.Copy).GBps {
		t.Error("strided must be slower than contiguous")
	}
	if !strided.Kernel(kernel.Copy).Verified {
		t.Error("strided run must still verify (order does not change results)")
	}
}

func TestUnitConversions(t *testing.T) {
	kr := KernelResult{GBps: 2.5}
	if kr.KBps() != 2.5e6 {
		t.Errorf("KBps = %v", kr.KBps())
	}
	if kr.MBps() != 2500 {
		t.Errorf("MBps = %v", kr.MBps())
	}
}

func TestResultKernelLookup(t *testing.T) {
	r := &Result{Kernels: []KernelResult{{Op: kernel.Copy}, {Op: kernel.Triad}}}
	if r.Kernel(kernel.Triad) == nil {
		t.Error("lookup failed")
	}
	if r.Kernel(kernel.Scale) != nil {
		t.Error("missing op must return nil")
	}
}

// Cross-target shape check at the core level: the paper's headline
// ordering GPU > CPU > AOCL > SDAccel for contiguous copy at 16 MB.
func TestCrossTargetOrdering(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ops = []kernel.Op{kernel.Copy}
	cfg.ArrayBytes = 16 << 20
	bw := map[string]float64{}
	for _, id := range targets.IDs() {
		res, err := Run(dev(t, id), cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		bw[id] = res.Kernel(kernel.Copy).GBps
	}
	if !(bw["gpu"] > bw["cpu"] && bw["cpu"] > bw["aocl"] && bw["aocl"] > bw["sdaccel"]) {
		t.Errorf("ordering wrong: %v", bw)
	}
	// Rough factors from the paper at 16 MB: gpu/cpu ~8x, cpu/aocl ~10x,
	// aocl/sdaccel ~3.4x; accept wide bands.
	if r := stats.Ratio(bw["gpu"], bw["cpu"]); r < 4 || r > 16 {
		t.Errorf("gpu/cpu ratio = %.1f, want ~8", r)
	}
	if r := stats.Ratio(bw["aocl"], bw["sdaccel"]); r < 2 || r > 6 {
		t.Errorf("aocl/sdaccel ratio = %.1f, want ~3.4", r)
	}
}

func TestRunSurface(t *testing.T) {
	cfg := surface.Config{
		Patterns:   []mem.Pattern{mem.ContiguousPattern()},
		RWRatios:   []float64{1},
		Rates:      []float64{0.25, 1.0},
		ArrayBytes: 4 << 20,
		WindowTxns: 2048,
		ProbeHops:  64,
	}
	bad := cfg
	bad.KneeFactor = 0.5
	if _, err := RunSurface(dev(t, "gpu"), bad); err == nil {
		t.Error("sub-unity knee factor must fail validation")
	}
	s, err := RunSurface(dev(t, "gpu"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Curves) != 1 || len(s.Curves[0].Points) != 2 {
		t.Fatalf("unexpected surface shape: %d curves", len(s.Curves))
	}
	if s.Curves[0].Knee.GBps <= 0 {
		t.Error("knee bandwidth missing")
	}
}

func TestSurfaceProbeDerivation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ops = []kernel.Op{kernel.Triad}
	cfg.Pattern = mem.StridedPattern(8)
	probe := cfg.SurfaceProbe()
	if len(probe.Patterns) != 1 || probe.Patterns[0] != cfg.Pattern {
		t.Errorf("probe pattern %+v does not follow the config", probe.Patterns)
	}
	// Triad reads two streams and writes one: 2/3 reads.
	if len(probe.RWRatios) != 1 || probe.RWRatios[0] < 0.66 || probe.RWRatios[0] > 0.67 {
		t.Errorf("probe read fraction %v, want 2/3", probe.RWRatios)
	}
	if err := probe.Validate(); err != nil {
		t.Errorf("derived probe config invalid: %v", err)
	}
	// Copy: one read, one write.
	cfg.Ops = []kernel.Op{kernel.Copy}
	if got := cfg.SurfaceProbe().RWRatios[0]; got != 0.5 {
		t.Errorf("copy read fraction = %g, want 0.5", got)
	}
}

func TestKneeGBps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ops = []kernel.Op{kernel.Copy}
	knee, err := KneeGBps(dev(t, "cpu"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if knee <= 0 {
		t.Errorf("knee = %g, want positive", knee)
	}
	peak := dev(t, "cpu").Info().PeakMemGBps
	if knee > peak {
		t.Errorf("knee %g exceeds peak %g", knee, peak)
	}
	// Deterministic.
	again, err := KneeGBps(dev(t, "cpu"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if knee != again {
		t.Errorf("knee not deterministic: %g vs %g", knee, again)
	}
}

func TestRunRejectsChase(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ops = []kernel.Op{kernel.Chase}
	_, err := Run(dev(t, "cpu"), cfg)
	if err == nil || !strings.Contains(err.Error(), "latency probe") {
		t.Errorf("chase through core.Run must point to the surface subsystem, got %v", err)
	}
}

func TestSurfaceProbeDropsExplicitShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ops = []kernel.Op{kernel.Copy}
	cfg.ArrayBytes = 4 << 20
	// A shape valid for the benchmark arrays but not for the probe's own
	// fixed footprint: the probe must re-derive it.
	cfg.Pattern = mem.Pattern{Kind: mem.ColMajor2D, Rows: 1024, Cols: 1024}
	knee, err := KneeGBps(dev(t, "gpu"), cfg)
	if err != nil {
		t.Fatalf("knee over an explicit 2D shape: %v", err)
	}
	if knee <= 0 {
		t.Errorf("knee = %g", knee)
	}
}
