package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Canonical returns the configuration with every zero-valued knob
// resolved to its default and every documented equivalence collapsed,
// so that two Configs describing the same run compare (and hash)
// equal: Loop is ignored (zeroed) when OptimalLoop is set, and the
// attribute values 0 and 1 — defined as equivalent for Unroll,
// NumSIMDWorkItems and NumComputeUnits — normalize to 0. It is the
// form Fingerprint digests and the service layer caches on.
func (c Config) Canonical() Config {
	c = c.withDefaults()
	if c.OptimalLoop {
		c.Loop = 0
	}
	if c.Attrs.Unroll == 1 {
		c.Attrs.Unroll = 0
	}
	if c.Attrs.NumSIMDWorkItems == 1 {
		c.Attrs.NumSIMDWorkItems = 0
	}
	if c.Attrs.NumComputeUnits == 1 {
		c.Attrs.NumComputeUnits = 0
	}
	return c
}

// Fingerprint returns a stable hex digest identifying one (target,
// configuration) pair: SHA-256 over the target id and the canonical JSON
// encoding of the configuration. Two requests with the same fingerprint
// are guaranteed to simulate identically (the simulator is
// deterministic), which is what makes result caching sound.
func (c Config) Fingerprint(targetID string) string {
	canon := c.Canonical()
	b, err := json.Marshal(canon)
	if err != nil {
		// Config is a plain struct of marshalable fields; Marshal can only
		// fail on an enum value outside its range. Digest the full Go
		// representation so distinct invalid configs never collide.
		b = []byte(fmt.Sprintf("unmarshalable:%s:%#v", err, canon))
	}
	h := sha256.New()
	h.Write([]byte(targetID))
	h.Write([]byte{0})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}
