package core

import (
	"testing"
	"testing/quick"

	"mpstream/internal/device/targets"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/mem"
)

// Property: any structurally valid configuration either runs to a
// verified result with sane invariants, or is rejected by the device's
// compiler (FPGA fit / toolchain rules) — never a panic, never an
// unverified success, never a bandwidth above the device peak.
func TestQuickRandomConfigsAllTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("random-config sweep is slow")
	}
	devs := targets.All()
	f := func(devSel, opSel, dtSel, vwSel, loopSel, patSel uint8, sizeSel uint16, unrollSel uint8) bool {
		dev := devs[int(devSel)%len(devs)]
		cfg := DefaultConfig()
		cfg.NTimes = 1
		cfg.Ops = []kernel.Op{kernel.Ops()[int(opSel)%4]}
		cfg.Type = kernel.DataTypes()[int(dtSel)%2]
		cfg.VecWidth = kernel.VecWidths()[int(vwSel)%5]
		cfg.OptimalLoop = false
		cfg.Loop = kernel.LoopModes()[int(loopSel)%3]
		switch patSel % 3 {
		case 0:
			cfg.Pattern = mem.ContiguousPattern()
		case 1:
			cfg.Pattern = mem.StridedPattern(int(patSel%7) + 1)
		case 2:
			cfg.Pattern = mem.ColMajorPattern()
		}
		if cfg.Loop != kernel.NDRange {
			cfg.Attrs.Unroll = 1 << (unrollSel % 4)
		}
		// Element-aligned sizes from 16 KB to 2 MB.
		elemB := int64(cfg.Type.Bytes()) * int64(cfg.VecWidth)
		cfg.ArrayBytes = (int64(sizeSel%128) + 1) * 16384
		cfg.ArrayBytes -= cfg.ArrayBytes % elemB
		if cfg.ArrayBytes == 0 {
			cfg.ArrayBytes = elemB * 1024
		}

		res, err := Run(dev, cfg)
		if err != nil {
			// Rejection is fine (fit failures etc.); crashes are not.
			return true
		}
		kr := res.Kernel(cfg.Ops[0])
		if kr == nil || !kr.Verified || kr.BestSeconds <= 0 {
			return false
		}
		// Simulated bandwidth can never exceed the device's memory peak
		// by more than the STREAM-counting slack (cache-resident runs may
		// exceed DRAM peak; allow 4x headroom for those).
		return kr.GBps > 0 && kr.GBps < 4*res.Device.PeakMemGBps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
