package core

import (
	"context"
	"errors"
	"testing"

	"mpstream/internal/device/targets"
	"mpstream/internal/kernel"
)

// TestRunContextPreCanceled: a canceled context stops the run before
// any kernel executes and surfaces the context error.
func TestRunContextPreCanceled(t *testing.T) {
	dev, err := targets.ByID("cpu")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig()
	cfg.ArrayBytes = 1 << 16
	res, err := RunContext(ctx, dev, cfg)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = (%v, %v), want (nil, context.Canceled)", res, err)
	}
}

// TestRunContextExpiredDeadline surfaces DeadlineExceeded.
func TestRunContextExpiredDeadline(t *testing.T) {
	dev, err := targets.ByID("cpu")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	cfg := DefaultConfig()
	cfg.ArrayBytes = 1 << 16
	if _, err := RunContext(ctx, dev, cfg); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestRunContextMatchesRun: under a live context the result is
// byte-identical to the context-free path.
func TestRunContextMatchesRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ops = []kernel.Op{kernel.Triad}
	cfg.ArrayBytes = 1 << 16

	devA, _ := targets.ByID("gpu")
	devB, _ := targets.ByID("gpu")
	want, err := Run(devA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(context.Background(), devB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kernels[0].GBps != want.Kernels[0].GBps {
		t.Errorf("RunContext bandwidth %g != Run %g", got.Kernels[0].GBps, want.Kernels[0].GBps)
	}
}
