package core

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mpstream/internal/kernel"
	"mpstream/internal/sim/mem"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ops = []kernel.Op{kernel.Triad, kernel.Add}
	cfg.Type = kernel.Float64
	cfg.VecWidth = 8
	cfg.OptimalLoop = false
	cfg.Loop = kernel.NestedLoop
	cfg.Attrs.Unroll = 4
	cfg.Attrs.NumSIMDWorkItems = 0
	cfg.Pattern = mem.StridedPattern(32)
	cfg.HostIO = true

	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, back) {
		t.Errorf("config did not round-trip:\n orig %+v\n back %+v", cfg, back)
	}
}

func TestConfigJSONIsHumanReadable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ops = []kernel.Op{kernel.Triad}
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"ops":["triad"]`, `"type":"int"`, `"loop":"ndrange"`, `"kind":"contiguous"`} {
		if !strings.Contains(s, want) {
			t.Errorf("encoded config missing %s: %s", want, s)
		}
	}
}

func TestConfigJSONRejectsUnknownEnumValues(t *testing.T) {
	for _, bad := range []string{
		`{"type":"quad"}`,
		`{"loop":"spiral"}`,
		`{"ops":["fma"]}`,
		`{"pattern":{"kind":"random"}}`,
	} {
		var c Config
		if err := json.Unmarshal([]byte(bad), &c); err == nil {
			t.Errorf("unmarshal %s must fail", bad)
		}
	}
}

func TestFingerprintCanonical(t *testing.T) {
	// Zero-valued knobs and their explicit defaults hash identically.
	sparse := Config{ArrayBytes: 4 << 20, Pattern: mem.ContiguousPattern(), Verify: true, OptimalLoop: true}
	full := sparse
	full.Ops = kernel.Ops()
	full.NTimes = DefaultNTimes
	full.Scalar = DefaultScalar
	full.VecWidth = 1
	if sparse.Fingerprint("aocl") != full.Fingerprint("aocl") {
		t.Error("canonically equal configs must share a fingerprint")
	}

	// Loop is documented as ignored when OptimalLoop is set.
	loopy := full
	loopy.Loop = kernel.FlatLoop
	if loopy.Fingerprint("aocl") != full.Fingerprint("aocl") {
		t.Error("Loop must not affect the fingerprint when OptimalLoop is set")
	}
	// Attribute values 0 and 1 are documented as equivalent.
	ones := full
	ones.Attrs.Unroll = 1
	ones.Attrs.NumSIMDWorkItems = 1
	ones.Attrs.NumComputeUnits = 1
	if ones.Fingerprint("aocl") != full.Fingerprint("aocl") {
		t.Error("attribute value 1 must fingerprint like its equivalent 0")
	}

	// Any knob change, and any target change, changes the fingerprint.
	seen := map[string]string{}
	add := func(name, fp string) {
		if prev, ok := seen[fp]; ok {
			t.Errorf("fingerprint collision between %s and %s", prev, name)
		}
		seen[fp] = name
	}
	add("base/aocl", full.Fingerprint("aocl"))
	add("base/cpu", full.Fingerprint("cpu"))
	vec := full
	vec.VecWidth = 4
	add("vec4/aocl", vec.Fingerprint("aocl"))
	dt := full
	dt.Type = kernel.Float64
	add("double/aocl", dt.Fingerprint("aocl"))
	pat := full
	pat.Pattern = mem.ColMajorPattern()
	add("colmajor/aocl", pat.Fingerprint("aocl"))

	if fp := full.Fingerprint("aocl"); len(fp) != 64 {
		t.Errorf("fingerprint length %d, want 64 hex chars", len(fp))
	}

	// Distinct configs sharing an unmarshalable enum must not collide
	// (the fallback digest covers the whole config, not just the error).
	badA := full
	badA.Type = 99
	badB := badA
	badB.ArrayBytes = 1 << 16
	if badA.Fingerprint("aocl") == badB.Fingerprint("aocl") {
		t.Error("distinct unmarshalable configs must not share a fingerprint")
	}
}

func TestResultJSONTags(t *testing.T) {
	r := Result{}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"device"`, `"config"`, `"kernels"`, `"resources"`} {
		if !strings.Contains(s, want) {
			t.Errorf("encoded result missing %s: %s", want, s)
		}
	}
}
