package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// DigestJSON returns a stable hex digest of any result-shaped value:
// SHA-256 over its canonical JSON encoding. Go's encoding/json is
// deterministic for the result types this repo exchanges (struct fields
// encode in declaration order, floats via strconv's shortest round-trip
// form), so two values digest equal exactly when they are byte-identical
// on the wire — the equality the golden-parity test layer locks and the
// fleet merge path relies on.
//
// It is the Result/Surface counterpart of Config.Fingerprint: the
// fingerprint names the question, the digest names the answer.
func DigestJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Result types are plain marshalable structs; reaching here means
		// a programming error upstream. Digest the error representation so
		// distinct failures never collide silently.
		b = []byte(fmt.Sprintf("unmarshalable:%s:%#v", err, v))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// DigestResult digests one benchmark result (see DigestJSON).
func DigestResult(r *Result) string { return DigestJSON(r) }
