package shard

import "testing"

// checkCover asserts the ranges tile [0, n) exactly once, in order.
func checkCover(t *testing.T, n int, rs []Range) {
	t.Helper()
	lo := 0
	for i, r := range rs {
		if r.Lo != lo {
			t.Fatalf("range %d starts at %d, want %d (%v)", i, r.Lo, lo, rs)
		}
		if r.Size() < 1 {
			t.Fatalf("range %d is empty (%v)", i, rs)
		}
		lo = r.Hi
	}
	if lo != n {
		t.Fatalf("ranges end at %d, want %d (%v)", lo, n, rs)
	}
}

func TestSplitCoversAndBalances(t *testing.T) {
	for _, tc := range []struct{ n, parts, want int }{
		{10, 3, 3}, {10, 10, 10}, {10, 99, 10}, {10, 0, 1}, {1, 5, 1}, {7, 2, 2},
	} {
		rs := Split(tc.n, tc.parts)
		if len(rs) != tc.want {
			t.Errorf("Split(%d, %d) yields %d ranges, want %d", tc.n, tc.parts, len(rs), tc.want)
		}
		checkCover(t, tc.n, rs)
		// Balanced within one unit, larger shards first.
		for i := 1; i < len(rs); i++ {
			if rs[i].Size() > rs[i-1].Size() {
				t.Errorf("Split(%d, %d): range %d larger than its predecessor (%v)", tc.n, tc.parts, i, rs)
			}
			if rs[0].Size()-rs[i].Size() > 1 {
				t.Errorf("Split(%d, %d): imbalance > 1 unit (%v)", tc.n, tc.parts, rs)
			}
		}
	}
}

func TestUnitCountFloorsShardSize(t *testing.T) {
	for _, tc := range []struct{ n, unit, want int }{
		{16, 4, 4},  // exact division
		{17, 4, 4},  // remainder folds into existing shards
		{3, 4, 1},   // less work than one unit still yields a shard
		{24, 1, 24}, // unit 1: one shard per work unit
		{24, 0, 24}, // unit < 1 clamps to 1
		{4096, 8, 512},
	} {
		got := UnitCount(tc.n, tc.unit)
		if got != tc.want {
			t.Errorf("UnitCount(%d, %d) = %d, want %d", tc.n, tc.unit, got, tc.want)
			continue
		}
		// The floor contract: every shard of the resulting Split holds at
		// least unit work units (when n itself does).
		unit := tc.unit
		if unit < 1 {
			unit = 1
		}
		rs := Split(tc.n, got)
		checkCover(t, tc.n, rs)
		for i, r := range rs {
			if tc.n >= unit && r.Size() < unit {
				t.Errorf("UnitCount(%d, %d): shard %d size %d below floor", tc.n, tc.unit, i, r.Size())
			}
		}
	}
}
