// Package shard holds the contiguous range-splitting primitive every
// distributed-work layer shards with: sweep grids split their flat
// enumeration order (dse.Space.Partition) and surfaces split their
// curve axis (surface.Config.PartitionCurves) through the same
// function, so the invariant the fleet merge depends on — contiguous,
// covering exactly once, balanced within one unit, larger shards
// first — lives in exactly one place.
package shard

// Range is a contiguous run [Lo, Hi) of some flat work order.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Size returns the number of units the range covers.
func (r Range) Size() int { return r.Hi - r.Lo }

// Split divides [0, n) into at most parts contiguous ranges of
// near-equal size: sizes differ by at most one unit, larger ranges
// first, and concatenating the ranges in order covers [0, n) exactly
// once. parts outside [1, n] is clamped, so n >= 1 always yields at
// least one range.
func Split(n, parts int) []Range {
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	out := make([]Range, 0, parts)
	lo := 0
	for i := 0; i < parts; i++ {
		size := n / parts
		if i < n%parts {
			size++
		}
		out = append(out, Range{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// UnitCount sizes a partition of n work units with a per-shard size
// floor: the largest shard count such that every shard Split produces
// still holds at least unit work units. This is how the fleet
// scheduler over-partitions a job for its pull-based queue — many
// small shards bounded from below by granularity, not from above by a
// fleet-size cap. unit < 1 is treated as 1 (one shard per unit).
func UnitCount(n, unit int) int {
	if unit < 1 {
		unit = 1
	}
	parts := n / unit
	if parts < 1 {
		parts = 1
	}
	return parts
}
