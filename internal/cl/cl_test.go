package cl

import (
	"testing"

	"mpstream/internal/device/targets"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/mem"
)

func gpuContext(t *testing.T) *Context {
	t.Helper()
	d, err := targets.ByID("gpu")
	if err != nil {
		t.Fatal(err)
	}
	return CreateContext(d)
}

func TestPlatform(t *testing.T) {
	p := NewPlatform(targets.All()...)
	if len(p.Devices()) != 4 {
		t.Fatalf("got %d devices", len(p.Devices()))
	}
	d, err := p.DeviceByID("aocl")
	if err != nil || d.Info().ID != "aocl" {
		t.Errorf("DeviceByID: %v, %v", d, err)
	}
	if _, err := p.DeviceByID("nope"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestBufferCreation(t *testing.T) {
	ctx := gpuContext(t)
	b, err := ctx.CreateBuffer(kernel.Int32, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if b.Elems() != 1024 || b.Bytes() != 4096 || b.Type() != kernel.Int32 {
		t.Errorf("buffer metadata wrong: %d elems %d bytes", b.Elems(), b.Bytes())
	}
	if len(b.Int32s()) != 1024 {
		t.Error("functional buffer must have backing data")
	}
	if b.Float64s() != nil {
		t.Error("int buffer must not expose float data")
	}
	if _, err := ctx.CreateBuffer(kernel.Int32, 0); err == nil {
		t.Error("zero-size buffer accepted")
	}
}

func TestTimingOnlyBuffers(t *testing.T) {
	ctx := gpuContext(t)
	ctx.Functional = false
	b, err := ctx.CreateBuffer(kernel.Float64, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if b.Data() != nil {
		t.Error("timing-only buffer must not allocate")
	}
}

func TestFill(t *testing.T) {
	ctx := gpuContext(t)
	b, _ := ctx.CreateBuffer(kernel.Int32, 8)
	b.Fill(3)
	for _, v := range b.Int32s() {
		if v != 3 {
			t.Fatalf("Fill failed: %v", b.Int32s())
		}
	}
	f, _ := ctx.CreateBuffer(kernel.Float64, 8)
	f.Fill(2.5)
	if f.Float64s()[7] != 2.5 {
		t.Error("float Fill failed")
	}
}

func TestWriteReadBuffer(t *testing.T) {
	ctx := gpuContext(t)
	q := ctx.CreateCommandQueue()
	b, _ := ctx.CreateBuffer(kernel.Int32, 4)
	host := []int32{1, 2, 3, 4}
	ev, err := q.EnqueueWriteBuffer(b, host)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seconds() <= 0 {
		t.Error("write must take time over the link")
	}
	if b.Int32s()[2] != 3 {
		t.Error("write did not copy data")
	}
	back := make([]int32, 4)
	if _, err := q.EnqueueReadBuffer(b, back); err != nil {
		t.Fatal(err)
	}
	if back[3] != 4 {
		t.Error("read did not copy data")
	}
	if _, err := q.EnqueueWriteBuffer(b, []float64{1}); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := q.EnqueueWriteBuffer(b, []int32{1}); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestKernelBuildAndRun(t *testing.T) {
	ctx := gpuContext(t)
	q := ctx.CreateCommandQueue()
	prog := ctx.CreateProgram()

	k, err := prog.BuildKernel(kernel.Kernel{Op: kernel.Triad, Type: kernel.Float64, VecWidth: 1, Loop: kernel.NDRange})
	if err != nil {
		t.Fatal(err)
	}
	n := 1024
	a, _ := ctx.CreateBuffer(kernel.Float64, n)
	b, _ := ctx.CreateBuffer(kernel.Float64, n)
	c, _ := ctx.CreateBuffer(kernel.Float64, n)
	b.Fill(2)
	c.Fill(0.5)
	if err := k.SetArgs(a, b, c, 3); err != nil {
		t.Fatal(err)
	}
	ev, err := q.EnqueueKernel(k, mem.ContiguousPattern())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seconds() <= 0 {
		t.Error("kernel must take time")
	}
	want := kernel.Expected(kernel.Triad, 3, 2, 0.5)
	for i, v := range a.Float64s() {
		if v != want {
			t.Fatalf("a[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestSetArgsValidation(t *testing.T) {
	ctx := gpuContext(t)
	prog := ctx.CreateProgram()
	kCopy, err := prog.BuildKernel(kernel.New(kernel.Copy))
	if err != nil {
		t.Fatal(err)
	}
	kAdd, err := prog.BuildKernel(kernel.Kernel{Op: kernel.Add, Type: kernel.Int32, VecWidth: 1, Loop: kernel.NDRange})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ctx.CreateBuffer(kernel.Int32, 16)
	b, _ := ctx.CreateBuffer(kernel.Int32, 16)
	c, _ := ctx.CreateBuffer(kernel.Int32, 16)
	short, _ := ctx.CreateBuffer(kernel.Int32, 8)
	dbl, _ := ctx.CreateBuffer(kernel.Float64, 16)

	if err := kCopy.SetArgs(a, b, nil, 0); err != nil {
		t.Errorf("copy args rejected: %v", err)
	}
	if err := kCopy.SetArgs(a, b, c, 0); err == nil {
		t.Error("copy with extra input accepted")
	}
	if err := kCopy.SetArgs(nil, b, nil, 0); err == nil {
		t.Error("nil dst accepted")
	}
	if err := kAdd.SetArgs(a, b, nil, 0); err == nil {
		t.Error("add without second input accepted")
	}
	if err := kCopy.SetArgs(a, short, nil, 0); err == nil {
		t.Error("mismatched sizes accepted")
	}
	if err := kCopy.SetArgs(a, dbl, nil, 0); err == nil {
		t.Error("mismatched types accepted")
	}
}

func TestEnqueueUnboundKernel(t *testing.T) {
	ctx := gpuContext(t)
	q := ctx.CreateCommandQueue()
	k, err := ctx.CreateProgram().BuildKernel(kernel.New(kernel.Copy))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueKernel(k, mem.ContiguousPattern()); err == nil {
		t.Error("unbound kernel accepted")
	}
}

func TestQueueTimelineInOrder(t *testing.T) {
	ctx := gpuContext(t)
	q := ctx.CreateCommandQueue()
	b, _ := ctx.CreateBuffer(kernel.Int32, 1<<20)
	ev1, err := q.EnqueueWriteBuffer(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := q.EnqueueReadBuffer(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev1.Start != 0 {
		t.Error("first command must start at epoch")
	}
	if ev2.Start != ev1.End {
		t.Error("in-order queue: second command starts when first ends")
	}
	if q.Finish() != ev2.End {
		t.Error("Finish must return the last completion time")
	}
}

func TestBuildRejectsBadKernels(t *testing.T) {
	ctx := gpuContext(t)
	if _, err := ctx.CreateProgram().BuildKernel(kernel.Kernel{Op: kernel.Copy, VecWidth: 3}); err == nil {
		t.Error("invalid kernel built")
	}
	// FPGA fit failures surface as build errors.
	d, err := targets.ByID("aocl")
	if err != nil {
		t.Fatal(err)
	}
	fctx := CreateContext(d)
	huge := kernel.Kernel{Op: kernel.Triad, Type: kernel.Float64, VecWidth: 16,
		Loop: kernel.FlatLoop, Attrs: kernel.Attrs{Unroll: 64, NumComputeUnits: 16}}
	if _, err := fctx.CreateProgram().BuildKernel(huge); err == nil {
		t.Error("oversized FPGA design built")
	}
}

func TestTimingOnlyKernelRun(t *testing.T) {
	ctx := gpuContext(t)
	ctx.Functional = false
	q := ctx.CreateCommandQueue()
	k, err := ctx.CreateProgram().BuildKernel(kernel.New(kernel.Copy))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ctx.CreateBuffer(kernel.Int32, 1<<20)
	b, _ := ctx.CreateBuffer(kernel.Int32, 1<<20)
	if err := k.SetArgs(a, b, nil, 0); err != nil {
		t.Fatal(err)
	}
	ev, err := q.EnqueueKernel(k, mem.ContiguousPattern())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seconds() <= 0 {
		t.Error("timing-only kernel must still take time")
	}
}

// The four kernels produce STREAM-verifiable results on every target.
func TestFunctionalVerificationAllTargets(t *testing.T) {
	const q, bInit, cInit = 3.0, 2.0, 0.5
	for _, dev := range targets.All() {
		ctx := CreateContext(dev)
		queue := ctx.CreateCommandQueue()
		prog := ctx.CreateProgram()
		for _, op := range kernel.Ops() {
			spec := kernel.Kernel{Op: op, Type: kernel.Float64, VecWidth: 1, Loop: dev.Info().OptimalLoop}
			k, err := prog.BuildKernel(spec)
			if err != nil {
				t.Fatalf("%s/%s: %v", dev.Info().ID, op, err)
			}
			n := 4096
			a, _ := ctx.CreateBuffer(kernel.Float64, n)
			b, _ := ctx.CreateBuffer(kernel.Float64, n)
			var c *Buffer
			if op.InputStreams() == 2 {
				c, _ = ctx.CreateBuffer(kernel.Float64, n)
				c.Fill(cInit)
			}
			b.Fill(bInit)
			if err := k.SetArgs(a, b, c, q); err != nil {
				t.Fatal(err)
			}
			if _, err := queue.EnqueueKernel(k, mem.ContiguousPattern()); err != nil {
				t.Fatalf("%s/%s: %v", dev.Info().ID, op, err)
			}
			want := kernel.Expected(op, q, bInit, cInit)
			for i, v := range a.Float64s() {
				if v != want {
					t.Fatalf("%s/%s: a[%d] = %v, want %v", dev.Info().ID, op, i, v, want)
				}
			}
		}
	}
}
