// Package cl is an OpenCL-flavoured host runtime over the simulated
// devices: platforms, contexts, buffers, programs, kernels, and in-order
// command queues with profiling events.
//
// The benchmark core is written against this API the same way MP-STREAM
// is written against OpenCL. Execution is split in two:
//
//   - functionally, kernels really compute (a(i) = b(i) + q*c(i) on Go
//     slices), so results are verified exactly as STREAM verifies its
//     checksums;
//   - temporally, each command advances the queue's virtual clock by the
//     duration the device model predicts, and events expose the
//     start/end times CL_QUEUE_PROFILING_ENABLE would.
//
// Contexts can be switched to timing-only mode (Functional=false) for
// sweeps over arrays too large to materialize.
package cl

import (
	"fmt"
	"time"

	"mpstream/internal/device"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/clock"
	"mpstream/internal/sim/mem"
)

// Platform is a set of available devices, the OpenCL platform analogue.
type Platform struct {
	devices []device.Device
}

// NewPlatform builds a platform over the given devices.
func NewPlatform(devs ...device.Device) *Platform {
	return &Platform{devices: devs}
}

// Devices lists the platform's devices.
func (p *Platform) Devices() []device.Device { return p.devices }

// DeviceByID finds a device by its short id.
func (p *Platform) DeviceByID(id string) (device.Device, error) {
	return device.ByID(p.devices, id)
}

// Context owns buffers and programs for one device.
type Context struct {
	dev device.Device
	// Functional controls whether buffers hold real data and kernels
	// really execute. Timing is identical either way.
	Functional bool
}

// CreateContext makes a functional context for dev.
func CreateContext(dev device.Device) *Context {
	return &Context{dev: dev, Functional: true}
}

// Device returns the context's device.
func (c *Context) Device() device.Device { return c.dev }

// Buffer is a device-resident array.
type Buffer struct {
	ctx   *Context
	dt    kernel.DataType
	elems int
	data  any // []int32 or []float64 when functional
}

// CreateBuffer allocates a device buffer of elems elements.
func (c *Context) CreateBuffer(dt kernel.DataType, elems int) (*Buffer, error) {
	if elems <= 0 {
		return nil, fmt.Errorf("cl: buffer size %d must be positive", elems)
	}
	b := &Buffer{ctx: c, dt: dt, elems: elems}
	if c.Functional {
		switch dt {
		case kernel.Int32:
			b.data = make([]int32, elems)
		case kernel.Float64:
			b.data = make([]float64, elems)
		default:
			return nil, fmt.Errorf("cl: unsupported data type %v", dt)
		}
	}
	return b, nil
}

// Elems returns the element count.
func (b *Buffer) Elems() int { return b.elems }

// Bytes returns the buffer size in bytes.
func (b *Buffer) Bytes() int64 { return int64(b.elems) * int64(b.dt.Bytes()) }

// Type returns the element type.
func (b *Buffer) Type() kernel.DataType { return b.dt }

// Data exposes the backing slice ([]int32 or []float64); nil in
// timing-only contexts.
func (b *Buffer) Data() any { return b.data }

// Int32s returns the backing slice for int buffers, or nil.
func (b *Buffer) Int32s() []int32 {
	s, _ := b.data.([]int32)
	return s
}

// Float64s returns the backing slice for double buffers, or nil.
func (b *Buffer) Float64s() []float64 {
	s, _ := b.data.([]float64)
	return s
}

// Fill sets every element to v (host-side initialization, not timed).
func (b *Buffer) Fill(v float64) {
	switch d := b.data.(type) {
	case []int32:
		iv := int32(v)
		for i := range d {
			d[i] = iv
		}
	case []float64:
		for i := range d {
			d[i] = v
		}
	}
}

// Program compiles kernels for the context's device.
type Program struct {
	ctx *Context
}

// CreateProgram returns a program builder for the context.
func (c *Context) CreateProgram() *Program { return &Program{ctx: c} }

// Kernel is a compiled kernel with bound arguments.
type Kernel struct {
	ctx      *Context
	spec     kernel.Kernel
	compiled device.Compiled

	dst, b, c *Buffer
	q         float64
}

// BuildKernel compiles spec for the device (the clBuildProgram analogue,
// including FPGA synthesis for FPGA targets).
func (p *Program) BuildKernel(spec kernel.Kernel) (*Kernel, error) {
	compiled, err := p.ctx.dev.Compile(spec)
	if err != nil {
		return nil, fmt.Errorf("cl: build %s on %s: %w", spec.Name(), p.ctx.dev.Info().ID, err)
	}
	return &Kernel{ctx: p.ctx, spec: spec, compiled: compiled}, nil
}

// Spec returns the kernel configuration.
func (k *Kernel) Spec() kernel.Kernel { return k.spec }

// Compiled exposes the device plan (resources, fmax).
func (k *Kernel) Compiled() device.Compiled { return k.compiled }

// SetArgs binds the destination and source buffers plus the scalar q.
// c must be nil for one-input operations.
func (k *Kernel) SetArgs(dst, b, c *Buffer, q float64) error {
	if dst == nil || b == nil {
		return fmt.Errorf("cl: %s needs dst and b", k.spec.Name())
	}
	needC := k.spec.Op.InputStreams() == 2
	if needC && c == nil {
		return fmt.Errorf("cl: %s needs a second input", k.spec.Name())
	}
	if !needC && c != nil {
		return fmt.Errorf("cl: %s takes no second input", k.spec.Name())
	}
	bufs := []*Buffer{dst, b}
	if c != nil {
		bufs = append(bufs, c)
	}
	for _, buf := range bufs {
		if buf.dt != k.spec.Type {
			return fmt.Errorf("cl: buffer type %v does not match kernel type %v", buf.dt, k.spec.Type)
		}
		if buf.elems != dst.elems {
			return fmt.Errorf("cl: buffer sizes differ: %d vs %d", buf.elems, dst.elems)
		}
	}
	k.dst, k.b, k.c, k.q = dst, b, c, q
	return nil
}

// Event reports the profiled interval of one command.
type Event struct {
	Kind  string
	Start clock.Time
	End   clock.Time
}

// Seconds returns the command duration in seconds.
func (e *Event) Seconds() float64 { return (e.End - e.Start).Seconds() }

// Duration returns the command duration.
func (e *Event) Duration() time.Duration { return (e.End - e.Start).Duration() }

// CommandQueue is an in-order queue with a virtual clock.
type CommandQueue struct {
	ctx *Context
	now clock.Time
}

// CreateCommandQueue makes an empty in-order queue.
func (c *Context) CreateCommandQueue() *CommandQueue {
	return &CommandQueue{ctx: c}
}

// Now returns the queue's virtual time.
func (q *CommandQueue) Now() clock.Time { return q.now }

// advance appends a command of the given duration, returning its event.
func (q *CommandQueue) advance(kind string, seconds float64) *Event {
	ev := &Event{Kind: kind, Start: q.now, End: q.now.AddSeconds(seconds)}
	q.now = ev.End
	return ev
}

// EnqueueWriteBuffer transfers host data into a device buffer over the
// device link (clEnqueueWriteBuffer).
func (q *CommandQueue) EnqueueWriteBuffer(dst *Buffer, host any) (*Event, error) {
	if q.ctx.Functional && host != nil {
		if err := copyInto(dst.data, host); err != nil {
			return nil, err
		}
	}
	sec := q.ctx.dev.Link().TransferSeconds(uint64(dst.Bytes()))
	return q.advance("write-buffer", sec), nil
}

// EnqueueReadBuffer transfers a device buffer back to host memory.
func (q *CommandQueue) EnqueueReadBuffer(src *Buffer, host any) (*Event, error) {
	if q.ctx.Functional && host != nil {
		if err := copyInto(host, src.data); err != nil {
			return nil, err
		}
	}
	sec := q.ctx.dev.Link().TransferSeconds(uint64(src.Bytes()))
	return q.advance("read-buffer", sec), nil
}

func copyInto(dst, src any) error {
	switch d := dst.(type) {
	case []int32:
		s, ok := src.([]int32)
		if !ok || len(s) != len(d) {
			return fmt.Errorf("cl: host/device type or size mismatch")
		}
		copy(d, s)
	case []float64:
		s, ok := src.([]float64)
		if !ok || len(s) != len(d) {
			return fmt.Errorf("cl: host/device type or size mismatch")
		}
		copy(d, s)
	default:
		return fmt.Errorf("cl: unsupported transfer type %T", dst)
	}
	return nil
}

// EnqueueKernel launches the kernel over its bound buffers with the given
// access pattern (clEnqueueNDRangeKernel; for single work-item kernels
// the global size is 1 and the loop runs on the device).
func (q *CommandQueue) EnqueueKernel(k *Kernel, pattern mem.Pattern) (*Event, error) {
	if k.dst == nil {
		return nil, fmt.Errorf("cl: %s has unbound arguments", k.spec.Name())
	}
	exec := device.Exec{ArrayBytes: k.dst.Bytes(), Pattern: pattern}
	sec, err := k.compiled.Seconds(exec)
	if err != nil {
		return nil, fmt.Errorf("cl: enqueue %s: %w", k.spec.Name(), err)
	}
	sec += q.ctx.dev.LaunchOverheadSeconds()

	if q.ctx.Functional {
		if err := k.apply(); err != nil {
			return nil, fmt.Errorf("cl: execute %s: %w", k.spec.Name(), err)
		}
	}
	return q.advance("kernel:"+k.spec.Op.String(), sec), nil
}

// apply executes the kernel functionally over its bound buffers,
// dispatching to the monomorphic kernel paths when the buffers carry
// matching concrete types (they always do for well-formed bindings; the
// `any`-typed kernel.Apply remains as the mismatch-diagnosing fallback).
func (k *Kernel) apply() error {
	if d := k.dst.Int32s(); d != nil {
		b := k.b.Int32s()
		var c []int32
		cOK := k.c == nil
		if !cOK {
			c = k.c.Int32s()
			cOK = c != nil
		}
		if b != nil && cOK {
			return kernel.ApplyInt32(k.spec.Op, k.q, d, b, c)
		}
	} else if d := k.dst.Float64s(); d != nil {
		b := k.b.Float64s()
		var c []float64
		cOK := k.c == nil
		if !cOK {
			c = k.c.Float64s()
			cOK = c != nil
		}
		if b != nil && cOK {
			return kernel.ApplyFloat64(k.spec.Op, k.q, d, b, c)
		}
	}
	var cdata any
	if k.c != nil {
		cdata = k.c.data
	}
	return kernel.Apply(k.spec.Op, k.q, k.dst.data, k.b.data, cdata)
}

// Finish returns the queue's virtual time once all commands complete (the
// queue is in-order and synchronous, so this is simply Now).
func (q *CommandQueue) Finish() clock.Time { return q.now }
