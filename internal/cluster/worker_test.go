package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeCoordinator records registrations and heartbeats, and can start
// answering "unknown" to force a re-registration.
type fakeCoordinator struct {
	mu         sync.Mutex
	registered []WorkerInfo
	heartbeats int
	forget     bool
}

func (f *fakeCoordinator) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/register", func(w http.ResponseWriter, r *http.Request) {
		var info WorkerInfo
		_ = json.NewDecoder(r.Body).Decode(&info)
		f.mu.Lock()
		f.registered = append(f.registered, info)
		f.forget = false
		f.mu.Unlock()
		_ = json.NewEncoder(w).Encode(RegisterResponse{TTLMS: 300, HeartbeatMS: 10})
	})
	mux.HandleFunc("POST /v1/cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.heartbeats++
		known := !f.forget
		f.mu.Unlock()
		_ = json.NewEncoder(w).Encode(HeartbeatResponse{Known: known})
	})
	return mux
}

func (f *fakeCoordinator) stats() (regs, beats int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.registered), f.heartbeats
}

// TestJoinRegistersHeartbeatsAndReregisters drives the whole worker
// membership loop: initial registration, heartbeats at the assigned
// interval, and automatic re-registration once the coordinator stops
// recognizing the worker.
func TestJoinRegistersHeartbeatsAndReregisters(t *testing.T) {
	fc := &fakeCoordinator{}
	ts := httptest.NewServer(fc.handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		Join(ctx, JoinOptions{
			Coordinator: ts.URL,
			Self:        WorkerInfo{ID: "w0", Addr: "http://127.0.0.1:1", Targets: []string{"cpu"}, Capacity: 2},
		})
	}()

	waitFor := func(cond func(regs, beats int) bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if cond(fc.stats()) {
				return
			}
			if time.Now().After(deadline) {
				regs, beats := fc.stats()
				t.Fatalf("%s never happened (regs=%d beats=%d)", what, regs, beats)
			}
			time.Sleep(time.Millisecond)
		}
	}

	waitFor(func(regs, _ int) bool { return regs >= 1 }, "registration")
	waitFor(func(_, beats int) bool { return beats >= 2 }, "heartbeats")

	// Simulate a coordinator restart: heartbeats answer unknown until
	// the worker re-registers.
	fc.mu.Lock()
	fc.forget = true
	fc.mu.Unlock()
	waitFor(func(regs, _ int) bool { return regs >= 2 }, "re-registration")

	fc.mu.Lock()
	if got := fc.registered[0]; got.ID != "w0" || len(got.Targets) != 1 {
		t.Errorf("registered info = %+v", got)
	}
	fc.mu.Unlock()

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("join loop did not stop on context cancellation")
	}
}

// TestJoinRetriesUnreachableCoordinator: while the coordinator is
// down, the loop keeps retrying instead of exiting; it registers as
// soon as the coordinator appears.
func TestJoinRetriesUnreachableCoordinator(t *testing.T) {
	fc := &fakeCoordinator{}
	ts := httptest.NewUnstartedServer(fc.handler())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		Join(ctx, JoinOptions{
			// Nothing listens yet on the unstarted server's address.
			Coordinator: "http://" + ts.Listener.Addr().String(),
			Self:        WorkerInfo{ID: "w0", Addr: "http://127.0.0.1:1"},
			RetryEvery:  5 * time.Millisecond,
		})
	}()

	time.Sleep(20 * time.Millisecond)
	if regs, _ := fc.stats(); regs != 0 {
		t.Fatalf("registered against a dead coordinator: %d", regs)
	}
	ts.Start()
	defer ts.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if regs, _ := fc.stats(); regs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never registered after the coordinator came up")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
}
