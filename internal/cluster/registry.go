package cluster

import (
	"sort"
	"sync"
	"time"
)

// DefaultHeartbeatTTL is how long a registration survives without a
// heartbeat before the worker counts as lost.
const DefaultHeartbeatTTL = 10 * time.Second

// workerState is one registry entry; all fields are guarded by the
// registry mutex.
type workerState struct {
	info       WorkerInfo
	firstSeen  time.Time
	lastSeen   time.Time
	inflight   int
	shardsDone uint64
	failures   uint64
}

// registry tracks the worker fleet: registrations, heartbeats,
// liveness, and the in-flight load the scheduler balances against.
type registry struct {
	mu  sync.Mutex
	ttl time.Duration
	now func() time.Time // injectable clock for liveness tests

	workers map[string]*workerState
}

func newRegistry(ttl time.Duration, now func() time.Time) *registry {
	if ttl <= 0 {
		ttl = DefaultHeartbeatTTL
	}
	if now == nil {
		now = time.Now
	}
	return &registry{ttl: ttl, now: now, workers: make(map[string]*workerState)}
}

// upsert registers a worker or refreshes an existing registration
// (same ID), resetting its liveness clock. Counters survive
// re-registration: a restarted worker keeps its history.
func (r *registry) upsert(info WorkerInfo) {
	if info.Capacity < 1 {
		info.Capacity = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[info.ID]
	if !ok {
		w = &workerState{firstSeen: r.now()}
		r.workers[info.ID] = w
	}
	w.info = info
	w.lastSeen = r.now()
}

// heartbeat refreshes a worker's liveness clock; false means the
// worker is unknown (coordinator restarted or evicted it) and must
// re-register.
func (r *registry) heartbeat(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return false
	}
	w.lastSeen = r.now()
	return true
}

// markDown zeroes a worker's liveness clock so the scheduler stops
// picking it until its next heartbeat — the coordinator's reaction to
// a connection-level failure.
func (r *registry) markDown(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[id]; ok {
		w.lastSeen = time.Time{}
	}
}

// aliveLocked reports liveness of one entry. Requires r.mu held.
func (r *registry) aliveLocked(w *workerState) bool {
	return !w.lastSeen.IsZero() && r.now().Sub(w.lastSeen) <= r.ttl
}

// isAlive reports one worker's liveness.
func (r *registry) isAlive(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	return ok && r.aliveLocked(w)
}

// counts tallies alive and total registered workers.
func (r *registry) counts() (alive, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.workers {
		total++
		if r.aliveLocked(w) {
			alive++
		}
	}
	return alive, total
}

// snapshot returns every registry entry, sorted by worker ID for
// stable telemetry output.
func (r *registry) snapshot() []WorkerView {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerView, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, WorkerView{
			WorkerInfo: w.info,
			Alive:      r.aliveLocked(w),
			FirstSeen:  w.firstSeen,
			LastSeen:   w.lastSeen,
			Inflight:   w.inflight,
			ShardsDone: w.shardsDone,
			Failures:   w.failures,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// aliveSlots sums the capacity of alive workers serving target
// ("" = any target) — the denominator the coordinator sizes shard
// counts against.
func (r *registry) aliveSlots(target string) (workers, slots int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.workers {
		if !r.aliveLocked(w) || !serves(w.info, target) {
			continue
		}
		workers++
		slots += w.info.Capacity
	}
	return workers, slots
}

// serves reports whether the worker advertises target ("" matches any
// worker; a worker advertising no targets matches nothing).
func serves(info WorkerInfo, target string) bool {
	if target == "" {
		return true
	}
	for _, t := range info.Targets {
		if t == target {
			return true
		}
	}
	return false
}

// acquire picks the best alive worker serving target outside excluded
// and reserves one in-flight slot on it. Serving the target is a hard
// requirement, not a preference: a worker that does not advertise the
// target rejects its shard with a validation error, so dispatching
// there can only waste an attempt and smear a healthy worker's
// failure record. Among the eligible, the least relative load
// (inflight/capacity) wins, then the fewest failures, then ID order
// for determinism. ok is false when no alive, serving, non-excluded
// worker exists.
func (r *registry) acquire(target string, excluded map[string]bool) (WorkerInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best *workerState
	for _, id := range r.sortedIDsLocked() {
		w := r.workers[id]
		if excluded[id] || !r.aliveLocked(w) || !serves(w.info, target) {
			continue
		}
		if best == nil || betterPick(w, best) {
			best = w
		}
	}
	if best == nil {
		return WorkerInfo{}, false
	}
	best.inflight++
	return best.info, true
}

// acquireSlot is acquire with backpressure: only workers with a free
// capacity slot are eligible, so the shard dispatcher hands out at
// most Capacity shards per worker and keeps the rest queued — the
// "bounded" half of the pull-based queue. idleOnly further restricts
// the pick to completely idle workers (inflight == 0); speculation
// uses it so duplicate attempts only ever consume capacity nothing
// else wants.
func (r *registry) acquireSlot(target string, excluded map[string]bool, idleOnly bool) (WorkerInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best *workerState
	for _, id := range r.sortedIDsLocked() {
		w := r.workers[id]
		if excluded[id] || !r.aliveLocked(w) || !serves(w.info, target) {
			continue
		}
		if w.inflight >= w.info.Capacity || (idleOnly && w.inflight > 0) {
			continue
		}
		if best == nil || betterPick(w, best) {
			best = w
		}
	}
	if best == nil {
		return WorkerInfo{}, false
	}
	best.inflight++
	return best.info, true
}

// hasSlot reports whether acquireSlot would succeed, without reserving
// anything — the dispatcher's probe for distinguishing "no capacity"
// from "capacity exists but this shard's exclusions block it".
func (r *registry) hasSlot(target string, excluded map[string]bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.workers {
		if excluded[w.info.ID] || !r.aliveLocked(w) || !serves(w.info, target) {
			continue
		}
		if w.inflight < w.info.Capacity {
			return true
		}
	}
	return false
}

// betterPick orders scheduler candidates: relative load first
// (cross-multiplied to avoid float drift), then failure count.
func betterPick(w, best *workerState) bool {
	// w.inflight/w.cap < best.inflight/best.cap
	lw := w.inflight * best.info.Capacity
	lb := best.inflight * w.info.Capacity
	if lw != lb {
		return lw < lb
	}
	return w.failures < best.failures
}

// sortedIDsLocked returns worker IDs in stable order. Requires r.mu
// held.
func (r *registry) sortedIDsLocked() []string {
	ids := make([]string, 0, len(r.workers))
	for id := range r.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// release returns an acquire'd slot and records the attempt's outcome.
func (r *registry) release(id string, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, found := r.workers[id]
	if !found {
		return
	}
	if w.inflight > 0 {
		w.inflight--
	}
	if ok {
		w.shardsDone++
	} else {
		w.failures++
	}
}

// releaseOnly returns an acquire'd slot without recording an outcome —
// used for attempts that lost a speculation race, which are neither a
// completion nor the worker's fault.
func (r *registry) releaseOnly(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, found := r.workers[id]; found && w.inflight > 0 {
		w.inflight--
	}
}
