package cluster

import (
	"testing"
	"time"
)

// fakeClock is an adjustable registry clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testRegistry(ttl time.Duration) (*registry, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return newRegistry(ttl, clk.now), clk
}

func TestRegistryLiveness(t *testing.T) {
	r, clk := testRegistry(10 * time.Second)
	r.upsert(WorkerInfo{ID: "a", Addr: "http://a", Targets: []string{"cpu"}, Capacity: 2})

	if alive, total := r.counts(); alive != 1 || total != 1 {
		t.Fatalf("counts = %d/%d, want 1/1", alive, total)
	}

	// Inside the TTL the worker stays alive; past it, it is lost.
	clk.advance(9 * time.Second)
	if !r.isAlive("a") {
		t.Error("worker lost before its TTL")
	}
	clk.advance(2 * time.Second)
	if r.isAlive("a") {
		t.Error("worker alive past its TTL")
	}
	if alive, total := r.counts(); alive != 0 || total != 1 {
		t.Errorf("counts after expiry = %d/%d, want 0/1", alive, total)
	}

	// A heartbeat resurrects it; markDown kills it immediately.
	if !r.heartbeat("a") {
		t.Fatal("heartbeat for a registered worker reported unknown")
	}
	if !r.isAlive("a") {
		t.Error("worker dead after heartbeat")
	}
	r.markDown("a")
	if r.isAlive("a") {
		t.Error("worker alive after markDown")
	}
	if r.heartbeat("ghost") {
		t.Error("heartbeat for an unknown worker reported known")
	}
}

func TestRegistryAcquireLocalityAndLoad(t *testing.T) {
	r, _ := testRegistry(time.Minute)
	r.upsert(WorkerInfo{ID: "cpu-1", Addr: "http://c1", Targets: []string{"cpu"}, Capacity: 2})
	r.upsert(WorkerInfo{ID: "gpu-1", Addr: "http://g1", Targets: []string{"gpu"}, Capacity: 8})

	// Serving the target is a hard requirement: the cpu worker takes
	// cpu shards even though the gpu worker has far more free capacity.
	w, ok := r.acquire("cpu", nil)
	if !ok || w.ID != "cpu-1" {
		t.Fatalf("acquire(cpu) = %+v, %v", w, ok)
	}
	w2, ok := r.acquire("cpu", nil)
	if !ok || w2.ID != "cpu-1" {
		t.Fatalf("second acquire(cpu) = %+v", w2)
	}
	// A worker that does not advertise the target is never a fallback —
	// it would just reject the shard with a validation error.
	if w3, ok := r.acquire("cpu", map[string]bool{"cpu-1": true}); ok {
		t.Fatalf("acquire(cpu, exclude local) handed out non-serving worker %+v", w3)
	}
	// The empty target matches any worker.
	w4, ok := r.acquire("", map[string]bool{"cpu-1": true})
	if !ok || w4.ID != "gpu-1" {
		t.Fatalf("acquire(any) = %+v, %v", w4, ok)
	}
	r.release("cpu-1", true)
	r.release("cpu-1", true)
	r.release("gpu-1", false)

	snap := r.snapshot()
	if len(snap) != 2 || snap[0].ID != "cpu-1" || snap[1].ID != "gpu-1" {
		t.Fatalf("snapshot order = %+v", snap)
	}
	if snap[0].ShardsDone != 2 || snap[0].Inflight != 0 {
		t.Errorf("cpu-1 view = %+v", snap[0])
	}
	if snap[1].Failures != 1 {
		t.Errorf("gpu-1 view = %+v", snap[1])
	}
}

func TestRegistryAcquireBalancesRelativeLoad(t *testing.T) {
	r, _ := testRegistry(time.Minute)
	r.upsert(WorkerInfo{ID: "big", Addr: "http://b", Targets: []string{"cpu"}, Capacity: 4})
	r.upsert(WorkerInfo{ID: "small", Addr: "http://s", Targets: []string{"cpu"}, Capacity: 1})

	// Five acquisitions: the 4-slot worker should absorb four, the
	// 1-slot worker one — relative load, not round robin.
	got := map[string]int{}
	for i := 0; i < 5; i++ {
		w, ok := r.acquire("cpu", nil)
		if !ok {
			t.Fatal("acquire failed with free capacity")
		}
		got[w.ID]++
	}
	if got["big"] != 4 || got["small"] != 1 {
		t.Errorf("distribution = %v, want big:4 small:1", got)
	}

	// No alive workers at all: acquire reports failure.
	r.markDown("big")
	r.markDown("small")
	if _, ok := r.acquire("cpu", nil); ok {
		t.Error("acquire succeeded with every worker down")
	}
}

func TestRegistryUpsertKeepsHistory(t *testing.T) {
	r, _ := testRegistry(time.Minute)
	r.upsert(WorkerInfo{ID: "a", Addr: "http://a", Capacity: 2})
	w, _ := r.acquire("", nil)
	r.release(w.ID, true)
	// A restarted worker re-registers under its ID: liveness resets,
	// history survives.
	r.markDown("a")
	r.upsert(WorkerInfo{ID: "a", Addr: "http://a2", Capacity: 3})
	snap := r.snapshot()
	if len(snap) != 1 || !snap[0].Alive || snap[0].Addr != "http://a2" || snap[0].ShardsDone != 1 {
		t.Errorf("re-registered view = %+v", snap[0])
	}
	// Capacity is clamped to at least one slot.
	r.upsert(WorkerInfo{ID: "z", Addr: "http://z"})
	for _, v := range r.snapshot() {
		if v.ID == "z" && v.Capacity != 1 {
			t.Errorf("zero capacity not clamped: %+v", v)
		}
	}
}
