package cluster

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"mpstream/internal/obs"
	"mpstream/internal/runstate"
)

// This file is the fleet job scheduler: a per-job dispatcher that
// feeds a queue of small shards to whichever worker has a free
// capacity slot. The queue replaces the old static partition (one
// goroutine per shard, each retrying in place): shards wait in index
// order, a worker finishing a shard implicitly pulls the next one, a
// worker joining mid-job is picked up by the dispatcher's next poll,
// and a dead worker's in-flight shards re-queue onto the survivors.
// At the job's tail the dispatcher speculates: an attempt running well
// past the completed-shard mean latency gets a duplicate on an idle
// worker, first result wins, and the loser is canceled through the
// normal CancelAndFetch path. All of it is safe because shard merges
// are byte-identical — executing a shard twice (or on a different
// worker) cannot change the job's bytes.

// attemptState is one live execution of a shard.
type attemptState struct {
	shard       int
	number      int // real attempt number; a speculative duplicate shares its primary's
	worker      WorkerInfo
	speculative bool
	cancel      context.CancelFunc
	started     time.Time
}

// attemptResult is what a finished attempt goroutine reports back to
// the dispatcher loop.
type attemptResult struct {
	at        *attemptState
	view      JobView
	got       bool
	err       error
	stopped   string // fleet context ended during the attempt
	raceLost  bool   // canceled because the other attempt settled the shard
	points    int    // evaluation units streamed (for progress rewind)
	elapsedMS int64
}

// dispatcher runs one fleet job's shard queue. All mutable state is
// owned by the run loop goroutine; attempt goroutines communicate only
// through the results channel.
type dispatcher struct {
	c      *Coordinator
	ctx    context.Context
	target string
	hooks  FleetHooks
	submit func(ctx context.Context, workerAddr string, shard int) (JobView, error)

	n        int
	outcomes []shardOutcome
	settled  []bool
	settledN int

	pending   []int             // shard indices awaiting dispatch, ascending (locality order)
	notBefore []time.Time       // per-shard re-dispatch backoff gate
	excluded  []map[string]bool // per-shard workers that already failed it
	attempts  []int             // real executions launched per shard
	first     []string          // worker of each shard's first assignment
	specDone  []bool            // a speculative duplicate was already launched
	lastErr   []error           // last failure, for the lost message
	inflight  map[int][]*attemptState
	results   chan attemptResult
	durations []float64 // completed-shard latencies (ms), the speculation estimate
	stalls    int       // consecutive no-alive-worker rounds
	nextStall time.Time // pacing for stall rounds, follows the backoff schedule
}

func newDispatcher(c *Coordinator, ctx context.Context, n int, target string, hooks FleetHooks,
	submit func(ctx context.Context, workerAddr string, shard int) (JobView, error)) *dispatcher {
	d := &dispatcher{
		c: c, ctx: ctx, target: target, hooks: hooks, submit: submit,
		n:         n,
		outcomes:  make([]shardOutcome, n),
		settled:   make([]bool, n),
		pending:   make([]int, 0, n),
		notBefore: make([]time.Time, n),
		excluded:  make([]map[string]bool, n),
		attempts:  make([]int, n),
		first:     make([]string, n),
		specDone:  make([]bool, n),
		lastErr:   make([]error, n),
		inflight:  make(map[int][]*attemptState, n),
		// Buffered past the worst case (every shard plus every possible
		// speculative duplicate) so late race losers never block sending
		// after the dispatcher has returned.
		results: make(chan attemptResult, 2*n),
	}
	for i := 0; i < n; i++ {
		d.pending = append(d.pending, i)
		d.excluded[i] = make(map[string]bool)
	}
	c.queueDepth.Add(int64(n))
	return d
}

// pollEvery is the dispatcher's idle wake-up period: how quickly it
// notices newly joined workers, expired backoff gates and speculation
// thresholds when no attempt result arrives to wake it.
func (d *dispatcher) pollEvery() time.Duration {
	p := d.c.opts.RetryBackoff / 2
	if p < time.Millisecond {
		p = time.Millisecond
	}
	if p > 50*time.Millisecond {
		p = 50 * time.Millisecond
	}
	return p
}

// run drives the job to completion and returns the per-shard outcomes.
func (d *dispatcher) run() []shardOutcome {
	defer func() { d.c.queueDepth.Add(-int64(len(d.pending))) }()
	ctxDone := d.ctx.Done()
	for d.settledN < d.n {
		if d.ctx.Err() == nil {
			d.dispatch()
			d.maybeSpeculate()
		}
		timer := time.NewTimer(d.pollEvery())
		select {
		case r := <-d.results:
			timer.Stop()
			d.handle(r)
		case <-timer.C:
		case <-ctxDone:
			timer.Stop()
			ctxDone = nil // fire once; in-flight attempts self-cancel via d.ctx
			d.stopPending()
		}
	}
	return d.outcomes
}

// dispatch hands queued shards to workers with free capacity, in shard
// index order, honoring per-shard backoff gates and exclusions. When
// the queue has work but the fleet has no alive worker at all, it
// counts an idle-wait round and — after MaxAttempts such rounds with
// nothing in flight — fails the remaining shards.
func (d *dispatcher) dispatch() {
	now := time.Now()
	launched := false
	for idx := 0; idx < len(d.pending); {
		i := d.pending[idx]
		if now.Before(d.notBefore[i]) {
			idx++
			continue
		}
		w, ok := d.c.reg.acquireSlot(d.target, d.excluded[i], false)
		if !ok {
			idx++
			continue
		}
		d.pending = append(d.pending[:idx], d.pending[idx+1:]...)
		d.c.queueDepth.Add(-1)
		d.launch(i, w, false)
		launched = true
	}
	if launched || len(d.pending) == 0 {
		d.stalls = 0
		return
	}
	if workers, _ := d.c.reg.aliveSlots(d.target); workers > 0 {
		// Capacity is the bottleneck, not liveness: shards whose backoff
		// or exclusions blocked them this round simply wait. A shard
		// blocked only by its exclusions while free capacity exists
		// clears them, so a recovered worker can take it next round
		// instead of the job failing with idle capacity.
		d.stalls = 0
		for _, i := range d.pending {
			if len(d.excluded[i]) > 0 &&
				d.c.reg.hasSlot(d.target, nil) && !d.c.reg.hasSlot(d.target, d.excluded[i]) {
				d.excluded[i] = make(map[string]bool)
			}
		}
		return
	}
	if d.inflightCount() > 0 || now.Before(d.nextStall) {
		return
	}
	// Queued work, nothing running, no alive worker: one idle-wait
	// round. The job survives MaxAttempts such rounds (paced by the
	// retry backoff schedule) before giving up, so a restarting fleet
	// has the same grace it had under the per-shard retry loop.
	d.stalls++
	d.c.shardsWaited.Add(1)
	d.nextStall = now.Add(d.c.backoffDelay(d.stalls))
	d.c.log.Warn("cluster: no alive worker for queued shards",
		"queued", len(d.pending), "round", d.stalls, "target", d.target,
		"trace", obs.TraceID(d.ctx))
	d.hooks.shard(ShardUpdate{Shard: -1, State: "waiting", Error: ErrNoWorkers.Error(),
		Queued: len(d.pending)})
	if d.stalls > d.c.opts.MaxAttempts {
		for len(d.pending) > 0 {
			i := d.pending[0]
			d.unqueue(i)
			err := d.lastErr[i]
			if err == nil {
				err = ErrNoWorkers
			}
			d.lose(i, fmt.Errorf("shard %d lost after %d attempts: %w", i, d.attempts[i]+d.stalls, err))
		}
	}
}

// unqueue removes shard i from the pending queue.
func (d *dispatcher) unqueue(i int) {
	for idx, p := range d.pending {
		if p == i {
			d.pending = append(d.pending[:idx], d.pending[idx+1:]...)
			d.c.queueDepth.Add(-1)
			return
		}
	}
}

// requeue puts shard i back on the queue (in index order) with a
// backoff gate before its next dispatch.
func (d *dispatcher) requeue(i int, delay time.Duration) {
	d.notBefore[i] = time.Now().Add(delay)
	idx := 0
	for idx < len(d.pending) && d.pending[idx] < i {
		idx++
	}
	d.pending = append(d.pending, 0)
	copy(d.pending[idx+1:], d.pending[idx:])
	d.pending[idx] = i
	d.c.queueDepth.Add(1)
}

// launch starts one execution of shard i on w (whose capacity slot the
// caller already reserved through acquireSlot).
func (d *dispatcher) launch(i int, w WorkerInfo, speculative bool) {
	actx, cancel := context.WithCancel(d.ctx)
	if speculative {
		d.specDone[i] = true
		d.c.shardsSpeculated.Add(1)
	} else {
		d.attempts[i]++
		if d.first[i] == "" {
			d.first[i] = w.ID
		}
	}
	at := &attemptState{
		shard: i, number: d.attempts[i], worker: w,
		speculative: speculative, cancel: cancel, started: time.Now(),
	}
	d.inflight[i] = append(d.inflight[i], at)
	d.c.shardsAssigned.Add(1)
	state := "assigned"
	if speculative {
		state = "speculated"
		d.c.log.Info("cluster: speculating straggler shard",
			"shard", i, "worker", w.ID, "attempt", at.number,
			"trace", obs.TraceID(d.ctx))
	}
	d.hooks.shard(ShardUpdate{Shard: i, Worker: w.ID, Attempt: at.number, State: state,
		Speculative: speculative, Queued: len(d.pending)})
	go d.runAttempt(actx, at)
}

// inflightCount tallies live attempts across unsettled shards.
func (d *dispatcher) inflightCount() int {
	n := 0
	for _, ats := range d.inflight {
		n += len(ats)
	}
	return n
}

// maybeSpeculate launches duplicate attempts for tail stragglers. The
// tail condition is the queue being empty: every worker that frees up
// from here on would sit idle, so duplicating a straggler costs
// capacity nothing else wants. The threshold is the completed-shard
// mean latency scaled by SpecFactor (floored so sub-millisecond shards
// don't speculate on jitter), and it needs SpecMinSamples completed
// shards before it means anything. One duplicate per shard, on an
// idle worker other than the one already running it.
func (d *dispatcher) maybeSpeculate() {
	if d.c.opts.DisableSpeculation || len(d.pending) > 0 || d.settledN == d.n {
		return
	}
	if len(d.durations) < d.c.opts.SpecMinSamples {
		return
	}
	var sum float64
	for _, v := range d.durations {
		sum += v
	}
	threshold := sum / float64(len(d.durations)) * d.c.opts.SpecFactor
	if threshold < specFloorMS {
		threshold = specFloorMS
	}
	now := time.Now()
	for i, ats := range d.inflight {
		if d.settled[i] || d.specDone[i] || len(ats) != 1 || ats[0].speculative {
			continue
		}
		at := ats[0]
		elapsed := float64(now.Sub(at.started).Milliseconds())
		if elapsed <= threshold {
			continue
		}
		w, ok := d.c.reg.acquireSlot(d.target, map[string]bool{at.worker.ID: true}, true)
		if !ok {
			return // no idle worker; re-check next wake
		}
		d.launch(i, w, true)
	}
}

// settle records shard i's final outcome.
func (d *dispatcher) settle(i int, o shardOutcome) {
	d.outcomes[i] = o
	d.settled[i] = true
	d.settledN++
}

// lose marks shard i permanently failed.
func (d *dispatcher) lose(i int, err error) {
	d.c.shardsLost.Add(1)
	d.c.log.Error("cluster: shard lost, failing fleet job",
		"shard", i, "attempts", d.attempts[i],
		"trace", obs.TraceID(d.ctx), "err", err)
	d.hooks.shard(ShardUpdate{Shard: i, Attempt: d.attempts[i], State: "lost",
		Error: err.Error(), Queued: len(d.pending)})
	d.settle(i, shardOutcome{err: err})
}

// stopPending settles every still-queued shard as stopped once the
// fleet context ends; in-flight attempts observe the same context and
// report their own stopped results.
func (d *dispatcher) stopPending() {
	st := runstate.FromContext(d.ctx)
	for len(d.pending) > 0 {
		i := d.pending[0]
		d.unqueue(i)
		d.settle(i, shardOutcome{stopped: st})
	}
}

// cancelLosers cancels shard i's other attempts after winner settled
// it — the losing half of a speculation race (or, symmetrically, a
// primary superseded by its duplicate). The canceled goroutine fans a
// CancelAndFetch to its worker and drains into the buffered results
// channel; the dispatcher does not wait for it.
func (d *dispatcher) cancelLosers(i int, winner *attemptState) {
	for _, at := range d.inflight[i] {
		if at == winner {
			continue
		}
		at.cancel()
		if at.speculative {
			d.c.speculationWasted.Add(1)
		}
		d.hooks.shard(ShardUpdate{Shard: i, Worker: at.worker.ID, Attempt: at.number,
			State: "lost-race", Speculative: at.speculative,
			ElapsedMS: time.Since(at.started).Milliseconds(), Queued: len(d.pending)})
	}
	d.inflight[i] = nil
}

// removeInflight drops one attempt from the in-flight set.
func (d *dispatcher) removeInflight(at *attemptState) {
	ats := d.inflight[at.shard]
	for idx, a := range ats {
		if a == at {
			d.inflight[at.shard] = append(ats[:idx], ats[idx+1:]...)
			return
		}
	}
}

// handle folds one finished attempt back into the job.
func (d *dispatcher) handle(r attemptResult) {
	i := r.at.shard
	d.removeInflight(r.at)
	if d.settled[i] {
		// A race loser (or an attempt that finished after the fleet
		// context settled the shard): its outcome was accounted for at
		// cancel time.
		return
	}
	switch {
	case r.stopped != "":
		d.settle(i, shardOutcome{view: r.view, got: r.got, stopped: r.stopped})
	case r.raceLost:
		// Canceled without the shard being settled — only possible if
		// settle raced the cancel; the winner's result is on the channel.
	case r.err == nil:
		d.c.shardsDone.Add(1)
		if r.at.speculative {
			d.c.speculationWins.Add(1)
		} else if d.first[i] != "" && d.first[i] != r.at.worker.ID {
			d.c.shardsStolen.Add(1)
		}
		d.durations = append(d.durations, float64(r.elapsedMS))
		d.hooks.shard(ShardUpdate{Shard: i, Worker: r.at.worker.ID, Attempt: r.at.number,
			State: "done", Speculative: r.at.speculative,
			ElapsedMS: r.elapsedMS, Queued: len(d.pending)})
		d.settle(i, shardOutcome{view: r.view, got: true})
		d.cancelLosers(i, r.at)
	default:
		d.lastErr[i] = r.err
		d.hooks.shard(ShardUpdate{Shard: i, Worker: r.at.worker.ID, Attempt: r.at.number,
			State: "failed", Speculative: r.at.speculative, Error: r.err.Error(),
			RewindPoints: r.points, ElapsedMS: r.elapsedMS, Queued: len(d.pending)})
		if r.at.speculative {
			d.c.speculationWasted.Add(1)
		} else {
			d.excluded[i][r.at.worker.ID] = true
		}
		if len(d.inflight[i]) > 0 {
			// The shard's other attempt (primary or duplicate) is still
			// running and will decide it; don't pile on a third execution.
			return
		}
		if d.attempts[i] >= d.c.opts.MaxAttempts {
			d.lose(i, fmt.Errorf("shard %d lost after %d attempts: %w", i, d.attempts[i], r.err))
			return
		}
		d.c.shardsRetried.Add(1)
		d.c.log.Warn("cluster: shard attempt failed, re-queueing",
			"worker", r.at.worker.ID, "shard", i, "attempt", r.at.number,
			"trace", obs.TraceID(d.ctx), "err", r.err)
		d.requeue(i, d.c.backoffDelay(d.attempts[i]))
	}
}

// runAttempt executes one attempt on its worker and reports the result
// to the dispatcher. It is the only code that touches the worker for
// this attempt: submit, await (with the liveness watchdog), and the
// cancel fan-out when either the fleet context or the attempt's own
// context (a lost speculation race) ends. One span per attempt keeps
// retry and speculation cost explicit in the trace.
func (d *dispatcher) runAttempt(ctx context.Context, at *attemptState) {
	c := d.c
	i, w := at.shard, at.worker
	actx, sp := obs.StartSpan(ctx, "shard.execute",
		"shard", strconv.Itoa(i), "worker", w.ID, "attempt", strconv.Itoa(at.number))
	if at.speculative {
		sp.SetAttr("speculative", "true")
	}
	// Points streamed by this attempt; a retry re-runs them, so they
	// are reported back for the aggregate progress rewind. A
	// speculative duplicate re-evaluates points its primary already
	// streamed, so its stream is not forwarded — the primary's counted
	// points stay valid (identical bytes) and the job-end reconcile
	// squares the remainder.
	points := 0
	onPoint := func(p PointEvent) {
		points++
		if !at.speculative {
			d.hooks.point(p)
		}
	}
	var view JobView
	queued, err := d.submit(actx, w.Addr, i)
	if err == nil {
		view, err = c.awaitWithWatchdog(actx, w, queued.ID, onPoint)
	}

	if st := runstate.FromContext(d.ctx); st != "" {
		// Fleet job canceled (or deadline-expired): fan the cancel out
		// to the worker and collect its terminal partial view.
		if queued.ID != "" {
			view, err = c.client.CancelAndFetch(w.Addr, queued.ID)
		}
		c.ingestSpans(d.ctx, &view)
		sp.SetAttr("state", "canceled")
		sp.End()
		c.reg.release(w.ID, err == nil)
		d.results <- attemptResult{at: at, view: view, got: err == nil, stopped: st, points: points}
		return
	}
	if err != nil && ctx.Err() != nil {
		// The attempt's own context was canceled while the fleet is
		// alive: the other attempt won the race. Cancel the worker job,
		// keep its spans for the trace, and bow out without smearing the
		// worker's failure record.
		if queued.ID != "" {
			if v, cerr := c.client.CancelAndFetch(w.Addr, queued.ID); cerr == nil {
				view = v
			}
		}
		c.ingestSpans(d.ctx, &view)
		sp.SetAttr("state", "lost-race")
		sp.End()
		c.reg.releaseOnly(w.ID)
		d.results <- attemptResult{at: at, raceLost: true, points: points,
			elapsedMS: time.Since(at.started).Milliseconds()}
		return
	}

	elapsed := time.Since(at.started).Milliseconds()
	var se *StatusError
	switch {
	case err == nil && view.Status == "done":
		c.ingestSpans(d.ctx, &view)
		sp.SetAttr("state", "done")
		sp.End()
		c.reg.release(w.ID, true)
		d.results <- attemptResult{at: at, view: view, got: true, elapsedMS: elapsed}
		return
	case err == nil:
		// failed or canceled on the worker side while the fleet is
		// alive (bad factory, worker-local timeout): re-queue elsewhere.
		c.ingestSpans(d.ctx, &view)
		err = fmt.Errorf("worker %s: shard job %s: %s", w.ID, view.Status, view.Error)
	case errors.As(err, &se):
		// A well-formed refusal (queue full, validation) from a live
		// worker: re-queue elsewhere, but the worker stays alive —
		// marking it down would let the liveness watchdog reap its
		// other, perfectly healthy in-flight shards.
	default:
		// Transport-level failure: the worker is likely gone. Mark it
		// down so the dispatcher stops picking it before its TTL
		// expires, and best-effort cancel the orphaned job in case the
		// worker is actually alive behind a broken stream.
		sp.SetAttr("lost", "true")
		c.reg.markDown(w.ID)
		c.log.Warn("cluster: marking worker down after transport failure",
			"worker", w.ID, "addr", w.Addr, "shard", i, "attempt", at.number,
			"trace", obs.TraceID(d.ctx), "err", err)
		if queued.ID != "" {
			_ = c.client.Cancel(w.Addr, queued.ID)
		}
	}
	sp.SetAttr("state", "failed")
	sp.SetAttr("error", err.Error())
	sp.End()
	c.reg.release(w.ID, false)
	d.results <- attemptResult{at: at, err: err, points: points, elapsedMS: elapsed}
}
