package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mpstream/internal/core"
	"mpstream/internal/dse"
	"mpstream/internal/kernel"
	"mpstream/internal/obs"
	"mpstream/internal/shard"
	"mpstream/internal/surface"
)

// ErrUnavailable wraps fleet failures that are about the fleet, not the
// work: no alive workers, or every attempt exhausted on transport
// errors. Callers fall back to local execution on it.
var ErrUnavailable = errors.New("cluster: fleet unavailable")

// Defaults for Options zero values.
const (
	// DefaultShardUnit is the per-shard work floor: a fleet job is
	// partitioned into the largest shard count that still leaves at
	// least this many work units (grid points, surface curves) per
	// shard. Small shards are what make the pull queue elastic — the
	// unit of stealing, re-queueing and speculation is one shard.
	DefaultShardUnit = 4
	// DefaultMaxAttempts bounds how many real executions one shard gets
	// before the fleet job fails.
	DefaultMaxAttempts = 3
	// DefaultRetryBackoff is the base of the capped exponential backoff
	// a re-queued shard waits before it may be dispatched again.
	DefaultRetryBackoff = 100 * time.Millisecond
	// DefaultMaxBackoff caps the backoff growth.
	DefaultMaxBackoff = 2 * time.Second
	// DefaultSpecFactor scales the completed-shard mean latency into
	// the speculation threshold: a tail attempt running longer than
	// factor x mean gets a duplicate on an idle worker.
	DefaultSpecFactor = 2.0
	// DefaultSpecMinSamples is how many completed shards the latency
	// estimate needs before speculation may trigger.
	DefaultSpecMinSamples = 3
)

// specFloorMS floors the speculation threshold so sub-millisecond
// shard latencies (tiny grids, warm caches) don't turn scheduling
// jitter into duplicate executions.
const specFloorMS = 25.0

// Options configures a Coordinator. The zero value is production-
// shaped.
type Options struct {
	// Client performs the worker HTTP calls; nil means NewClient().
	Client *Client
	// HeartbeatTTL is how long a registration lives without a
	// heartbeat; <= 0 means DefaultHeartbeatTTL.
	HeartbeatTTL time.Duration
	// ShardUnit, MaxAttempts, RetryBackoff and MaxBackoff tune the
	// shard scheduler; <= 0 means the defaults above.
	ShardUnit    int
	MaxAttempts  int
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// DisableSpeculation turns off speculative tail re-execution;
	// SpecFactor and SpecMinSamples tune its trigger (<= 0 means the
	// defaults above).
	DisableSpeculation bool
	SpecFactor         float64
	SpecMinSamples     int
	// Now is the liveness clock; nil means time.Now. Tests inject fake
	// clocks here.
	Now func() time.Time
	// Logger receives the scheduler's leveled diagnostics: shard
	// retries, workers marked down, watchdog reaps, lost shards — the
	// paths that used to fail silently. Nil discards them.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = NewClient()
	}
	if o.HeartbeatTTL <= 0 {
		o.HeartbeatTTL = DefaultHeartbeatTTL
	}
	if o.ShardUnit <= 0 {
		o.ShardUnit = DefaultShardUnit
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = DefaultRetryBackoff
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = DefaultMaxBackoff
	}
	if o.SpecFactor <= 0 {
		o.SpecFactor = DefaultSpecFactor
	}
	if o.SpecMinSamples <= 0 {
		o.SpecMinSamples = DefaultSpecMinSamples
	}
	return o
}

// Coordinator owns the worker registry and schedules fleet jobs over
// it. Create with New, attach to a service server, and Close on
// shutdown (stops the static-peer probes; in-flight fleet jobs are
// governed by their own contexts).
type Coordinator struct {
	opts   Options
	client *Client
	reg    *registry
	log    *slog.Logger

	// Shard scheduling counters, exposed through Stats for the service
	// metrics collector. Cheap unconditional atomics.
	shardsAssigned    atomic.Uint64
	shardsDone        atomic.Uint64
	shardsRetried     atomic.Uint64
	shardsWaited      atomic.Uint64
	shardsLost        atomic.Uint64
	shardsStolen      atomic.Uint64
	shardsSpeculated  atomic.Uint64
	speculationWins   atomic.Uint64
	speculationWasted atomic.Uint64
	remoteEvals       atomic.Uint64
	queueDepth        atomic.Int64

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds a Coordinator.
func New(opts Options) *Coordinator {
	opts = opts.withDefaults()
	log := opts.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	return &Coordinator{
		opts:   opts,
		client: opts.Client,
		reg:    newRegistry(opts.HeartbeatTTL, opts.Now),
		log:    log,
		stop:   make(chan struct{}),
	}
}

// FleetStats snapshots the coordinator's lifetime shard-scheduling
// counters.
type FleetStats struct {
	ShardsAssigned uint64 `json:"shards_assigned"`
	ShardsDone     uint64 `json:"shards_done"`
	// ShardsRetried counts real re-executions: a shard re-queued after
	// a failed attempt. ShardsWaited counts scheduler rounds spent with
	// queued work but no alive worker — idle waits, not attempts.
	ShardsRetried uint64 `json:"shards_retried"`
	ShardsWaited  uint64 `json:"shards_waited"`
	ShardsLost    uint64 `json:"shards_lost"`
	// ShardsStolen counts shards completed by a different worker than
	// the one first assigned — the pull queue absorbing a failure or a
	// dead worker's in-flight work. Speculation wins are counted
	// separately, not as steals.
	ShardsStolen uint64 `json:"shards_stolen"`
	// ShardsSpeculated counts duplicate tail attempts launched;
	// SpeculationWins those that finished first, SpeculationWasted
	// those that lost the race or failed.
	ShardsSpeculated  uint64 `json:"shards_speculated"`
	SpeculationWins   uint64 `json:"speculation_wins"`
	SpeculationWasted uint64 `json:"speculation_wasted"`
	RemoteEvals       uint64 `json:"remote_evals"`
	// QueueDepth is the current number of queued shards across all
	// in-flight fleet jobs — a gauge, not a counter.
	QueueDepth int64 `json:"queue_depth"`
}

// Stats reads the lifetime shard-scheduling counters.
func (c *Coordinator) Stats() FleetStats {
	return FleetStats{
		ShardsAssigned:    c.shardsAssigned.Load(),
		ShardsDone:        c.shardsDone.Load(),
		ShardsRetried:     c.shardsRetried.Load(),
		ShardsWaited:      c.shardsWaited.Load(),
		ShardsLost:        c.shardsLost.Load(),
		ShardsStolen:      c.shardsStolen.Load(),
		ShardsSpeculated:  c.shardsSpeculated.Load(),
		SpeculationWins:   c.speculationWins.Load(),
		SpeculationWasted: c.speculationWasted.Load(),
		RemoteEvals:       c.remoteEvals.Load(),
		QueueDepth:        c.queueDepth.Load(),
	}
}

// Close stops the background peer probes. Idempotent.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Register adds or refreshes a worker registration and returns the
// heartbeat contract.
func (c *Coordinator) Register(info WorkerInfo) RegisterResponse {
	c.reg.upsert(info)
	ttl := c.opts.HeartbeatTTL
	return RegisterResponse{TTLMS: ttl.Milliseconds(), HeartbeatMS: (ttl / 3).Milliseconds()}
}

// Heartbeat refreshes a worker's liveness; false asks it to
// re-register.
func (c *Coordinator) Heartbeat(id string) bool { return c.reg.heartbeat(id) }

// Workers snapshots the registry for telemetry.
func (c *Coordinator) Workers() []WorkerView { return c.reg.snapshot() }

// Counts tallies alive and total registered workers.
func (c *Coordinator) Counts() (alive, total int) { return c.reg.counts() }

// HasWorkers reports whether at least one alive worker serves target.
func (c *Coordinator) HasWorkers(target string) bool {
	n, _ := c.reg.aliveSlots(target)
	return n > 0
}

// ScrapeWorkers fetches every alive worker's /v1/metrics exposition
// concurrently, bounding each scrape with timeout so one stuck worker
// cannot stall the federated response. Failed scrapes are returned
// with Err set (not dropped) so the merged exposition can report
// per-worker scrape health.
func (c *Coordinator) ScrapeWorkers(ctx context.Context, timeout time.Duration) []obs.Exposition {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	var alive []WorkerView
	for _, w := range c.reg.snapshot() {
		if w.Alive {
			alive = append(alive, w)
		}
	}
	parts := make([]obs.Exposition, len(alive))
	var wg sync.WaitGroup
	for i, w := range alive {
		wg.Add(1)
		go func(i int, w WorkerView) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			body, err := c.client.Metrics(sctx, w.Addr)
			parts[i] = obs.Exposition{Worker: w.ID, Body: body, Err: err}
		}(i, w)
	}
	wg.Wait()
	return parts
}

// WatchPeers keeps static peers (mpserved -peers) registered: each
// address is probed immediately and then on a ticker at a third of the
// heartbeat TTL, standing in for the register/heartbeat loop a dynamic
// worker runs itself. Unreachable peers simply age out of liveness
// until a probe succeeds again.
func (c *Coordinator) WatchPeers(addrs []string) {
	probe := func(addr string) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if info, err := c.client.Probe(ctx, addr); err == nil {
			c.reg.upsert(info)
		}
	}
	for _, addr := range addrs {
		probe(addr)
		c.wg.Add(1)
		go func(addr string) {
			defer c.wg.Done()
			tick := time.NewTicker(c.opts.HeartbeatTTL / 3)
			defer tick.Stop()
			for {
				select {
				case <-c.stop:
					return
				case <-tick.C:
					probe(addr)
				}
			}
		}(addr)
	}
}

// FleetHooks surfaces a fleet job's in-flight telemetry: forwarded
// worker point events and shard scheduling updates. Both callbacks are
// invoked concurrently from shard goroutines and must be safe for
// that. Either may be nil.
type FleetHooks struct {
	OnPoint func(PointEvent)
	OnShard func(ShardUpdate)
}

func (h FleetHooks) point(p PointEvent) {
	if h.OnPoint != nil {
		h.OnPoint(p)
	}
}

func (h FleetHooks) shard(u ShardUpdate) {
	if h.OnShard != nil {
		h.OnShard(u)
	}
}

// shardCount sizes a fleet job's partition: as many shards as the
// per-shard work floor allows, independent of fleet size. The pull
// queue, not the partition, decides which worker executes what, so
// over-partitioning is how fast workers absorb more of the job. The
// floor is per job kind — sweeps floor at ShardUnit grid points, while
// surfaces floor at one curve per shard (a curve is already a coarse
// unit: a full rate ladder of measured points).
func (c *Coordinator) shardCount(units, unit int) int {
	return shard.UnitCount(units, unit)
}

// shardOutcome is one shard's final state inside a fleet job.
type shardOutcome struct {
	view    JobView
	got     bool   // a usable (possibly partial) view landed
	stopped string // the shard observed the fleet context ending
	err     error  // attempts exhausted
}

// runShards drives n shards to outcomes through the pull-based
// dispatcher in scheduler.go: shards queue in index (locality) order,
// workers with free capacity pull the next shard, failed or lost
// attempts re-queue, and straggling tail attempts are speculatively
// duplicated on idle workers. A canceled fleet context fans the
// cancellation out: every in-flight worker job gets a DELETE and its
// terminal partial view is collected. submit dispatches shard i to one
// worker and returns the queued job's view.
func (c *Coordinator) runShards(ctx context.Context, n int, target string, hooks FleetHooks,
	submit func(ctx context.Context, workerAddr string, shard int) (JobView, error)) []shardOutcome {
	return newDispatcher(c, ctx, n, target, hooks, submit).run()
}

// ingestSpans grafts a worker view's piggybacked spans into the
// recorder carried by the fleet job's context (no-op without one),
// then strips them so the coordinator's own payloads never re-ship
// another node's spans.
func (c *Coordinator) ingestSpans(ctx context.Context, view *JobView) {
	if len(view.Spans) == 0 {
		return
	}
	obs.RecorderFrom(ctx).Ingest(view.Spans...)
	view.Spans = nil
}

// awaitWithWatchdog follows a shard job's event stream, abandoning the
// wait as soon as the worker stops being alive in the registry — a
// worker that died silently (no RST on its open connections, e.g. a
// network partition or a machine that lost power) would otherwise pin
// the shard until TCP gives up. Liveness decays via the heartbeat TTL
// and via other shards' transport failures marking the worker down, so
// every shard on a dead worker is reaped within one watchdog period.
func (c *Coordinator) awaitWithWatchdog(ctx context.Context, w WorkerInfo, id string, onPoint func(PointEvent)) (JobView, error) {
	awaitCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	period := c.opts.HeartbeatTTL / 4
	if period > time.Second {
		period = time.Second
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-awaitCtx.Done():
				return
			case <-tick.C:
				if !c.reg.isAlive(w.ID) {
					cancel()
					return
				}
			}
		}
	}()
	view, err := c.client.AwaitJob(awaitCtx, w.Addr, id, onPoint)
	if err != nil && ctx.Err() == nil && awaitCtx.Err() != nil {
		c.log.Warn("cluster: watchdog reaped await on dead worker",
			"worker", w.ID, "job", id, "trace", obs.TraceID(ctx))
		err = fmt.Errorf("cluster: worker %s no longer alive while awaiting job %s", w.ID, id)
	}
	return view, err
}

// backoffDelay is the capped exponential delay before a shard's next
// execution (attempt counts the executions already made).
func (c *Coordinator) backoffDelay(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := c.opts.RetryBackoff << (attempt - 1)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	return d
}

// SweepSpec describes one fleet sweep: the same parameters a local
// sweep job carries. Base must already be canonical and validated (the
// service submit path does both).
type SweepSpec struct {
	Target    string
	Base      core.Config
	Space     dse.Space
	Op        kernel.Op
	TimeoutMS int64
}

// Sweep partitions the grid, schedules the shards over the fleet, and
// merges the shard rankings back into the canonical exploration.
//
// The merge is byte-identical to a single-node sweep: shards are
// contiguous flat ranges in grid order, each worker ranks its shard
// with the same stable sort a local sweep uses, and re-ranking the
// concatenated shard rankings preserves the relative order of
// equal-bandwidth points — exactly the global stable sort over the
// flat enumeration. Returned alongside are the summed worker cache
// hits and the stop tag ("" unless the fleet context ended first).
func (c *Coordinator) Sweep(ctx context.Context, spec SweepSpec, hooks FleetHooks) (*dse.Exploration, int, string, error) {
	if !c.HasWorkers(spec.Target) {
		return nil, 0, "", fmt.Errorf("%w for target %q", ErrUnavailable, spec.Target)
	}
	ranges := spec.Space.Partition(c.shardCount(spec.Space.Size(), c.opts.ShardUnit))
	submit := func(ctx context.Context, workerAddr string, shard int) (JobView, error) {
		r := ranges[shard]
		base := spec.Base
		op := spec.Op
		return c.client.SweepShard(ctx, workerAddr, SweepShardRequest{
			Target:    spec.Target,
			Base:      &base,
			Space:     spec.Space,
			Op:        &op,
			Lo:        r.Lo,
			Hi:        r.Hi,
			TimeoutMS: spec.TimeoutMS,
		})
	}
	outcomes := c.runShards(ctx, len(ranges), spec.Target, hooks, submit)

	_, msp := obs.StartSpan(ctx, "fleet.merge", "shards", strconv.Itoa(len(ranges)))
	defer msp.End()
	stopped := ""
	var pts []dse.Point
	infeasible, cached := 0, 0
	for _, o := range outcomes {
		if o.err != nil {
			return nil, 0, "", o.err
		}
		if o.stopped != "" && stopped == "" {
			stopped = o.stopped
		}
		if !o.got || o.view.Sweep == nil {
			continue
		}
		pts = append(pts, o.view.Sweep.Ranked...)
		infeasible += o.view.Sweep.Infeasible
		cached += o.view.CachedPoints
	}
	ex := dse.Rank(pts, spec.Op)
	ex.Infeasible = infeasible
	return &ex, cached, stopped, nil
}

// SurfaceSpec describes one fleet surface measurement. Config must
// already be canonical (WithDefaults) and validated.
type SurfaceSpec struct {
	Target    string
	Config    surface.Config
	TimeoutMS int64
}

// Surface partitions the ladder's curves, schedules the shards over
// the fleet, and reassembles the canonical surface. Identical to a
// single-node generation for the same reason sweeps are: curve shards
// are contiguous in pattern-major order and the simulator is
// deterministic.
func (c *Coordinator) Surface(ctx context.Context, spec SurfaceSpec, hooks FleetHooks) (*surface.Surface, string, error) {
	if !c.HasWorkers(spec.Target) {
		return nil, "", fmt.Errorf("%w for target %q", ErrUnavailable, spec.Target)
	}
	shards := spec.Config.PartitionCurves(c.shardCount(spec.Config.CurveCount(), 1))
	submit := func(ctx context.Context, workerAddr string, shard int) (JobView, error) {
		sh := shards[shard]
		cfg := spec.Config
		return c.client.SurfaceShard(ctx, workerAddr, SurfaceShardRequest{
			Target:    spec.Target,
			Config:    &cfg,
			Lo:        sh.Lo,
			Hi:        sh.Hi,
			TimeoutMS: spec.TimeoutMS,
		})
	}
	outcomes := c.runShards(ctx, len(shards), spec.Target, hooks, submit)

	_, msp := obs.StartSpan(ctx, "fleet.merge", "shards", strconv.Itoa(len(shards)))
	defer msp.End()
	stopped := ""
	var parts []*surface.Surface
	for _, o := range outcomes {
		if o.err != nil {
			return nil, "", o.err
		}
		if o.stopped != "" && stopped == "" {
			stopped = o.stopped
		}
		if !o.got || o.view.Surface == nil {
			continue
		}
		parts = append(parts, o.view.Surface)
	}
	if len(parts) == 0 {
		return nil, stopped, fmt.Errorf("%w: no surface shards returned", ErrUnavailable)
	}
	merged, err := surface.MergeShards(parts)
	if err != nil {
		return nil, stopped, err
	}
	if stopped != "" && merged.Stopped == "" {
		merged.Stopped = stopped
	}
	return merged, stopped, nil
}

// Eval runs one configuration on the fleet — the remote-eval client
// pool behind a coordinator-local optimizer search. The worker is
// picked per call (locality, then load), so concurrent searches
// balance across the fleet. A failed worker job whose fleet-side
// transport succeeded is a real evaluation outcome (an infeasible
// design) and is returned as a plain error; transport-level failures
// are retried on other workers and, when exhausted, reported wrapped
// in ErrUnavailable so the caller falls back to evaluating locally.
func (c *Coordinator) Eval(ctx context.Context, target string, cfg core.Config, timeoutMS int64) (*core.Result, error) {
	excluded := make(map[string]bool)
	var lastErr error = ErrNoWorkers
	for attempt := 1; attempt <= c.opts.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w, ok := c.reg.acquire(target, excluded)
		if !ok {
			break
		}
		cc := cfg
		// Same contract as shard.execute: one span per attempt, the span
		// ID stamped onto the worker request so the worker's job spans
		// graft under it.
		ectx, sp := obs.StartSpan(ctx, "cluster.eval",
			"worker", w.ID, "attempt", strconv.Itoa(attempt))
		view, err := c.client.Run(ectx, w.Addr, RunRequest{Target: target, Config: &cc, TimeoutMS: timeoutMS})
		c.ingestSpans(ctx, &view)
		switch {
		case err == nil && view.Status == "done" && view.Result != nil:
			sp.SetAttr("state", "done")
			sp.End()
			c.reg.release(w.ID, true)
			c.remoteEvals.Add(1)
			return view.Result, nil
		case err == nil && view.Status == "failed":
			// The worker evaluated the point and the simulator rejected it:
			// an infeasible design, not a fleet problem.
			sp.SetAttr("state", "infeasible")
			sp.End()
			c.reg.release(w.ID, true)
			return nil, errors.New(view.Error)
		case err == nil:
			sp.SetAttr("state", "failed")
			sp.End()
			c.reg.release(w.ID, false)
			lastErr = fmt.Errorf("worker %s: run job %s", w.ID, view.Status)
			excluded[w.ID] = true
		default:
			sp.SetAttr("state", "failed")
			sp.SetAttr("lost", "true")
			sp.End()
			if ctx.Err() != nil {
				c.reg.release(w.ID, false)
				return nil, ctx.Err()
			}
			c.reg.release(w.ID, false)
			// Only transport-level failures suggest a dead worker; a live
			// worker's well-formed refusal (queue full) must not mark it
			// down and trip the watchdog on its other work.
			var se *StatusError
			if !errors.As(err, &se) {
				c.reg.markDown(w.ID)
				c.log.Warn("cluster: marking worker down after remote eval transport failure",
					"worker", w.ID, "addr", w.Addr, "attempt", attempt,
					"trace", obs.TraceID(ctx), "err", err)
			}
			lastErr = err
			excluded[w.ID] = true
		}
	}
	return nil, fmt.Errorf("%w: %v", ErrUnavailable, lastErr)
}
