package cluster

import (
	"context"
	"log/slog"
	"time"

	"mpstream/internal/obs"
)

// JoinOptions configures a worker's join loop.
type JoinOptions struct {
	// Client performs the coordinator HTTP calls; nil means NewClient().
	Client *Client
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Self is the registration the worker advertises.
	Self WorkerInfo
	// RetryEvery paces registration retries while the coordinator is
	// unreachable; <= 0 means 2s.
	RetryEvery time.Duration
	// Logger receives join-loop state transitions (registration
	// failures and heartbeat losses at Warn, successful registration at
	// Info). Nil discards them.
	Logger *slog.Logger
}

// Join runs a worker's membership loop until ctx ends: register with
// the coordinator (retrying while it is unreachable), then heartbeat
// at the coordinator-assigned interval, re-registering whenever the
// coordinator stops recognizing the worker (a coordinator restart
// loses its in-memory registry; workers heal it automatically).
func Join(ctx context.Context, opts JoinOptions) {
	client := opts.Client
	if client == nil {
		client = NewClient()
	}
	retry := opts.RetryEvery
	if retry <= 0 {
		retry = 2 * time.Second
	}
	log := opts.Logger
	if log == nil {
		log = obs.NopLogger()
	}

	for ctx.Err() == nil {
		resp, err := register(ctx, client, opts.Coordinator, opts.Self)
		if err != nil {
			log.Warn("cluster: register with coordinator failed, retrying",
				"coordinator", opts.Coordinator, "worker", opts.Self.ID,
				"retry_in", retry, "err", err)
			if !sleep(ctx, retry) {
				return
			}
			continue
		}
		interval := time.Duration(resp.HeartbeatMS) * time.Millisecond
		if interval <= 0 {
			interval = DefaultHeartbeatTTL / 3
		}
		log.Info("cluster: registered with coordinator",
			"coordinator", opts.Coordinator, "worker", opts.Self.ID,
			"heartbeat_every", interval)
		for ctx.Err() == nil {
			if !sleep(ctx, interval) {
				return
			}
			hbCtx, cancel := context.WithTimeout(ctx, interval)
			known, err := client.Heartbeat(hbCtx, opts.Coordinator, opts.Self.ID)
			cancel()
			if err != nil || !known {
				log.Warn("cluster: heartbeat lost, re-registering",
					"coordinator", opts.Coordinator, "worker", opts.Self.ID,
					"known", known, "err", err)
				break
			}
		}
	}
}

// register performs one registration attempt under a bounded deadline.
func register(ctx context.Context, client *Client, coord string, self WorkerInfo) (RegisterResponse, error) {
	regCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	return client.Register(regCtx, coord, self)
}

// sleep waits d or until ctx ends; false means ctx ended.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
