// Package cluster is the coordinator/worker fleet layer that scales
// MP-STREAM's design-space exploration beyond one process. A worker is
// an ordinary mpserved instance that registers itself (targets and
// capacity), heartbeats, and executes shard jobs through the same
// /v1/* HTTP API it serves to everyone else. The coordinator partitions
// sweep grids (dse.Space.Partition) and surface ladders
// (surface.Config.PartitionCurves) into many small contiguous shards
// (sized by a per-shard work floor, not by fleet size) and feeds them
// through a pull-based bounded queue: whichever worker frees a
// capacity slot takes the next shard, so fast workers absorb more of
// the grid, workers joining mid-job start pulling immediately, and a
// dead worker's in-flight shards re-queue onto the survivors. At the
// job's tail, straggling attempts are speculatively re-executed on
// idle workers with first-result-wins dedup. The partial results merge
// back into the canonical order — a distributed sweep is
// byte-identical to a single-node one because the simulator is
// deterministic and the shard merge is order-preserving, which is also
// what makes stealing and speculation safe.
//
// The package deliberately does not import internal/service: the
// service layer embeds a Coordinator and translates between its own
// job model and the fleet callbacks, while this package speaks only
// the HTTP wire format. Everything the coordinator learns about a job
// in flight (per-point events, shard assignment, retries) is surfaced
// through callbacks so the service can re-export one merged NDJSON
// event stream and one aggregated progress snapshot per fleet job.
package cluster

import (
	"errors"
	"time"

	"mpstream/internal/baseline"
	"mpstream/internal/core"
	"mpstream/internal/dse"
	"mpstream/internal/dse/search"
	"mpstream/internal/kernel"
	"mpstream/internal/obs"
	"mpstream/internal/surface"
)

// ErrNoWorkers is returned by fleet operations when no alive worker
// can serve the request; the service layer falls back to local
// execution.
var ErrNoWorkers = errors.New("cluster: no alive workers")

// WorkerInfo is what a worker advertises when registering: where to
// reach it, which targets it serves, and how many shard jobs it can
// execute concurrently.
type WorkerInfo struct {
	// ID names the worker; re-registration under the same ID replaces
	// the previous entry (a restarted worker is still one worker).
	ID string `json:"id"`
	// Addr is the worker's base URL, e.g. "http://10.0.0.7:8774".
	Addr string `json:"addr"`
	// Targets lists the benchmark targets the worker serves.
	Targets []string `json:"targets"`
	// Capacity is the worker's concurrent job slots (its worker-pool
	// size); the scheduler load-balances shards against it.
	Capacity int `json:"capacity"`
}

// WorkerView is the externally visible registry entry — the JSON shape
// GET /v1/cluster/workers serves.
type WorkerView struct {
	WorkerInfo
	// Alive reports a heartbeat within the TTL.
	Alive bool `json:"alive"`
	// FirstSeen is the time of the worker's first registration — the
	// base of its shards-completed rate.
	FirstSeen time.Time `json:"first_seen"`
	// LastSeen is the time of the last register or heartbeat.
	LastSeen time.Time `json:"last_seen"`
	// Inflight counts shards currently assigned to the worker.
	Inflight int `json:"inflight"`
	// ShardsDone and Failures count completed and failed shard
	// executions over the worker's lifetime in this registry.
	ShardsDone uint64 `json:"shards_done"`
	Failures   uint64 `json:"failures"`
}

// RegisterResponse tells a registering worker the heartbeat contract.
type RegisterResponse struct {
	// TTLMS is how long the registration stays alive without a
	// heartbeat.
	TTLMS int64 `json:"ttl_ms"`
	// HeartbeatMS is the interval the worker should heartbeat at
	// (comfortably inside the TTL).
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// HeartbeatRequest is the POST /v1/cluster/heartbeat body.
type HeartbeatRequest struct {
	ID string `json:"id"`
}

// HeartbeatResponse acknowledges a heartbeat; Known false tells the
// worker the coordinator restarted (or evicted it) and it must
// re-register.
type HeartbeatResponse struct {
	Known bool `json:"known"`
}

// SweepShardRequest is the POST /v1/cluster/shard/sweep body: one
// contiguous flat range [Lo, Hi) of a sweep grid. Lo == Hi == 0 is
// rejected only when the space is non-trivial; use Hi = space size for
// a whole grid.
type SweepShardRequest struct {
	Target string       `json:"target"`
	Base   *core.Config `json:"base,omitempty"`
	Space  dse.Space    `json:"space"`
	Op     *kernel.Op   `json:"op,omitempty"`
	// Lo and Hi bound the shard in the grid's flat enumeration order.
	Lo        int   `json:"lo"`
	Hi        int   `json:"hi"`
	Async     bool  `json:"async,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SurfaceShardRequest is the POST /v1/cluster/shard/surface body: one
// contiguous curve range [Lo, Hi) of a surface ladder in pattern-major
// order.
type SurfaceShardRequest struct {
	Target    string          `json:"target"`
	Config    *surface.Config `json:"config,omitempty"`
	Lo        int             `json:"lo"`
	Hi        int             `json:"hi"`
	Async     bool            `json:"async,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
}

// RunRequest is the POST /v1/run body the remote-eval client pool
// submits (a strict subset of the service's own request shape).
type RunRequest struct {
	Target    string       `json:"target"`
	Config    *core.Config `json:"config,omitempty"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`
}

// SweepRequest is the POST /v1/sweep body — what the CLIs submit when
// pointed at a server or fleet with -server.
type SweepRequest struct {
	Target    string       `json:"target"`
	Base      *core.Config `json:"base,omitempty"`
	Space     dse.Space    `json:"space"`
	Op        *kernel.Op   `json:"op,omitempty"`
	Async     bool         `json:"async,omitempty"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`
}

// OptimizeRequest is the POST /v1/optimize body.
type OptimizeRequest struct {
	Target    string       `json:"target"`
	Base      *core.Config `json:"base,omitempty"`
	Space     dse.Space    `json:"space"`
	Op        *kernel.Op   `json:"op,omitempty"`
	Strategy  string       `json:"strategy,omitempty"`
	Budget    int          `json:"budget,omitempty"`
	Seed      int64        `json:"seed,omitempty"`
	Objective string       `json:"objective,omitempty"`
	Async     bool         `json:"async,omitempty"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`
}

// SurfaceRequest is the POST /v1/surface body.
type SurfaceRequest struct {
	Target    string          `json:"target"`
	Config    *surface.Config `json:"config,omitempty"`
	Async     bool            `json:"async,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
}

// BaselineRequest is the POST /v1/baselines body: register a named
// reference measurement, sourced from a finished job (FromJob), an
// inline run result, or an inline surface — exactly one.
type BaselineRequest struct {
	Name          string             `json:"name"`
	Target        string             `json:"target"`
	Config        *core.Config       `json:"config,omitempty"`
	SurfaceConfig *surface.Config    `json:"surface_config,omitempty"`
	Result        *core.Result       `json:"result,omitempty"`
	Surface       *surface.Surface   `json:"surface,omitempty"`
	FromJob       string             `json:"from_job,omitempty"`
	Tolerance     baseline.Tolerance `json:"tolerance,omitempty"`
}

// CheckRequest is the POST /v1/check body: re-measure the named
// baseline's configuration and verdict it against the stored
// reference.
type CheckRequest struct {
	Name string `json:"name"`
	// Tolerance overrides the stored bands for this check only (zero
	// fields inherit the entry's).
	Tolerance *baseline.Tolerance `json:"tolerance,omitempty"`
	Async     bool                `json:"async,omitempty"`
	TimeoutMS int64               `json:"timeout_ms,omitempty"`
}

// JobView is the subset of the service's job view the cluster layer
// consumes; field names match the service wire format.
type JobView struct {
	ID           string           `json:"id"`
	Status       string           `json:"status"`
	StopReason   string           `json:"stop_reason,omitempty"`
	Cached       bool             `json:"cached,omitempty"`
	CachedPoints int              `json:"cached_points,omitempty"`
	Result       *core.Result     `json:"result,omitempty"`
	Sweep        *dse.Exploration `json:"sweep,omitempty"`
	Optimize     *search.Result   `json:"optimize,omitempty"`
	Surface      *surface.Surface `json:"surface,omitempty"`
	Check        *baseline.Report `json:"check,omitempty"`
	Error        string           `json:"error,omitempty"`
	// Spans piggybacks the worker's recorded spans for this job when it
	// was submitted under a remote parent span (the coordinator's shard
	// span); the coordinator ingests them to assemble one fleet-wide
	// trace tree.
	Spans []obs.Span `json:"spans,omitempty"`
}

// Terminal reports whether the view shows a finished job.
func (v *JobView) Terminal() bool {
	switch v.Status {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

// PointEvent mirrors the service's per-evaluation-unit event payload;
// the coordinator forwards these from worker event streams into the
// fleet job's own merged stream.
type PointEvent struct {
	Label     string  `json:"label"`
	GBps      float64 `json:"gbps"`
	Feasible  bool    `json:"feasible"`
	Error     string  `json:"error,omitempty"`
	Cached    bool    `json:"cached,omitempty"`
	LatencyNs float64 `json:"latency_ns,omitempty"`
}

// ShardUpdate reports fleet scheduling decisions for one shard — the
// payload behind the merged stream's "shard" events and the hook the
// service uses to keep aggregate progress honest across retries.
type ShardUpdate struct {
	// Shard indexes the shard within its fleet job, 0-based. -1 marks a
	// job-wide update (the "waiting" state, when the queue has work but
	// the fleet has no alive worker to pull it).
	Shard int `json:"shard"`
	// Worker is the assigned worker's ID.
	Worker string `json:"worker,omitempty"`
	// Attempt counts real (non-speculative) executions of this shard,
	// starting at 1. A speculative duplicate shares its primary's
	// attempt number.
	Attempt int `json:"attempt"`
	// State is "assigned" (pulled from the queue), "speculated" (a
	// duplicate tail attempt launched on an idle worker), "done",
	// "failed" (this attempt; the shard re-queues if attempts remain),
	// "lost-race" (the other attempt of a speculation race finished
	// first; this one is being canceled), "waiting" (queued work but no
	// alive worker) or "lost" (attempts exhausted).
	State string `json:"state"`
	// Speculative marks updates about a speculative duplicate attempt.
	Speculative bool `json:"speculative,omitempty"`
	// Queued is the job's shard-queue depth after this update — how
	// many shards are still waiting to be pulled.
	Queued int `json:"queued,omitempty"`
	// Error carries the failure reason on failed/waiting/lost updates.
	Error string `json:"error,omitempty"`
	// RewindPoints counts evaluation units the failed attempt already
	// streamed; a retry re-runs them, so aggregate progress must take
	// them back.
	RewindPoints int `json:"rewind_points,omitempty"`
	// ElapsedMS is the attempt's wall-clock duration on done, failed,
	// lost-race and lost updates (0 on assigned/speculated/waiting) —
	// the raw material of the shard tail-latency histogram.
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
}
