package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"mpstream/internal/baseline"
	"mpstream/internal/obs"
)

// Client speaks the service's HTTP JSON API to coordinators and
// workers. The zero value is not usable; create with NewClient.
type Client struct {
	// HTTP performs the requests. It must not set an overall timeout:
	// awaiting a shard's event stream legitimately takes as long as the
	// shard runs. Per-call bounds come from contexts.
	HTTP *http.Client
}

// NewClient builds a client around http.DefaultTransport.
func NewClient() *Client {
	return &Client{HTTP: &http.Client{}}
}

// errorBody is the service's uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

// StatusError is a well-formed non-2xx response from a live server —
// proof the worker is up and talking, as opposed to a transport-level
// failure (connection refused, broken stream) that suggests the
// worker is gone. The scheduler retries both, but only transport
// failures mark a worker down.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string { return e.Msg }

// statusErr builds the StatusError for a non-2xx response, decoding
// the service error body when present.
func statusErr(resp *http.Response, method, url string) *StatusError {
	var eb errorBody
	_ = json.NewDecoder(resp.Body).Decode(&eb)
	if eb.Error == "" {
		eb.Error = resp.Status
	}
	return &StatusError{Code: resp.StatusCode, Msg: fmt.Sprintf("cluster: %s %s: %s", method, url, eb.Error)}
}

// jobEnvelope wraps every job-bearing response body.
type jobEnvelope struct {
	Job JobView `json:"job"`
}

// do sends one JSON request and decodes the response into out (when
// non-nil). Non-2xx responses decode the service error body into the
// returned error.
func (c *Client) do(ctx context.Context, method, url string, body, out any) error {
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("cluster: encode %s %s: %w", method, url, err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return fmt.Errorf("cluster: %s %s: %w", method, url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if trace := obs.TraceID(ctx); trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	if parent := obs.SpanParent(ctx); parent != "" {
		req.Header.Set(obs.SpanHeader, parent)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: %s %s: %w", method, url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return statusErr(resp, method, url)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: decode %s %s: %w", method, url, err)
	}
	return nil
}

// Register announces a worker to the coordinator at coord.
func (c *Client) Register(ctx context.Context, coord string, info WorkerInfo) (RegisterResponse, error) {
	var out RegisterResponse
	err := c.do(ctx, http.MethodPost, coord+"/v1/cluster/register", info, &out)
	return out, err
}

// Heartbeat refreshes a worker's registration; known false means the
// coordinator no longer knows the worker and it must re-register.
func (c *Client) Heartbeat(ctx context.Context, coord, id string) (known bool, err error) {
	var out HeartbeatResponse
	if err := c.do(ctx, http.MethodPost, coord+"/v1/cluster/heartbeat", HeartbeatRequest{ID: id}, &out); err != nil {
		return false, err
	}
	return out.Known, nil
}

// SweepShard submits one sweep shard to a worker. The request is
// forced async: the returned view carries the job ID to await.
func (c *Client) SweepShard(ctx context.Context, worker string, req SweepShardRequest) (JobView, error) {
	req.Async = true
	var out jobEnvelope
	err := c.do(ctx, http.MethodPost, worker+"/v1/cluster/shard/sweep", req, &out)
	return out.Job, err
}

// SurfaceShard submits one surface curve shard to a worker, async.
func (c *Client) SurfaceShard(ctx context.Context, worker string, req SurfaceShardRequest) (JobView, error) {
	req.Async = true
	var out jobEnvelope
	err := c.do(ctx, http.MethodPost, worker+"/v1/cluster/shard/surface", req, &out)
	return out.Job, err
}

// Run executes one configuration on a worker synchronously — the
// remote-eval primitive the optimizer's client pool uses. The
// connection stays open for the duration of the run; a canceled ctx
// abandons the request (a single run is one evaluation unit, so the
// worker finishes at the same boundary local cancellation would).
func (c *Client) Run(ctx context.Context, worker string, req RunRequest) (JobView, error) {
	var out jobEnvelope
	err := c.do(ctx, http.MethodPost, worker+"/v1/run", req, &out)
	return out.Job, err
}

// RecordBaseline registers (or re-records) a named baseline on the
// server and returns the stored entry.
func (c *Client) RecordBaseline(ctx context.Context, server string, req BaselineRequest) (baseline.Entry, error) {
	var out struct {
		Baseline baseline.Entry `json:"baseline"`
	}
	err := c.do(ctx, http.MethodPost, server+"/v1/baselines", req, &out)
	return out.Baseline, err
}

// Job polls one job's current view.
func (c *Client) Job(ctx context.Context, worker, id string) (JobView, error) {
	var out jobEnvelope
	err := c.do(ctx, http.MethodGet, worker+"/v1/jobs/"+id, nil, &out)
	return out.Job, err
}

// Cancel requests cancellation of a worker job. It runs under its own
// short deadline — cancellation fan-out must not inherit the already-
// canceled fleet context.
func (c *Client) Cancel(worker, id string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return c.do(ctx, http.MethodDelete, worker+"/v1/jobs/"+id, nil, nil)
}

// CancelAndFetch cancels a job and collects its terminal view (the
// partial results a canceled job carries). It runs under its own
// deadline — the caller's context is typically already dead — and the
// deadline is generous: cancellation is only honored between
// evaluation units, and one unit (a big sweep point, a long surface
// rung) can legitimately run for a minute or more on a loaded worker.
// Giving up early would silently drop the shard's partial results
// from the merged canceled view.
func (c *Client) CancelAndFetch(server, id string) (JobView, error) {
	if err := c.Cancel(server, id); err != nil {
		return JobView{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for {
		view, err := c.Job(ctx, server, id)
		if err != nil {
			return JobView{}, err
		}
		if view.Terminal() {
			return view, nil
		}
		t := time.NewTimer(20 * time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return view, fmt.Errorf("cluster: job %s still running after cancel", id)
		case <-t.C:
		}
	}
}

// Submit posts one job request (any of the request types in this
// package) to a server path like "/v1/sweep" and returns the job view
// — terminal for a synchronous submission, queued for an async one.
func (c *Client) Submit(ctx context.Context, server, path string, req any) (JobView, error) {
	var out jobEnvelope
	err := c.do(ctx, http.MethodPost, server+path, req, &out)
	return out.Job, err
}

// SubmitAndWait submits a job (async requests are followed over their
// event stream until terminal) and returns the final view. When ctx is
// canceled mid-wait — a CLI Ctrl-C — the job is canceled server-side
// and its terminal view, carrying whatever partial results it
// collected, is returned instead of an error.
func (c *Client) SubmitAndWait(ctx context.Context, server, path string, req any, onPoint func(PointEvent)) (JobView, error) {
	view, err := c.Submit(ctx, server, path, req)
	if err != nil {
		return view, err
	}
	if view.Terminal() {
		return view, nil
	}
	final, err := c.AwaitJob(ctx, server, view.ID, onPoint)
	if err != nil && ctx.Err() != nil {
		return c.CancelAndFetch(server, view.ID)
	}
	return final, err
}

// workerEvent is the subset of the service's NDJSON event record the
// coordinator consumes while awaiting a shard.
type workerEvent struct {
	Type   string      `json:"type"`
	Point  *PointEvent `json:"point,omitempty"`
	Result *JobView    `json:"result,omitempty"`
}

// maxEventLine bounds one NDJSON event record; result events embed the
// full job view, which for a big shard can run to megabytes.
const maxEventLine = 64 << 20

// AwaitJob follows a worker job's NDJSON event stream until its
// terminal result event and returns the final view. onPoint — when
// non-nil — sees every point event as it streams, which is how a fleet
// job's merged event stream and aggregate progress stay live. A stream
// that ends without a result event (worker died mid-job) is an error;
// the caller retries the shard elsewhere.
func (c *Client) AwaitJob(ctx context.Context, worker, id string, onPoint func(PointEvent)) (JobView, error) {
	url := worker + "/v1/jobs/" + id + "/events"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return JobView{}, fmt.Errorf("cluster: await %s: %w", url, err)
	}
	if trace := obs.TraceID(ctx); trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	if parent := obs.SpanParent(ctx); parent != "" {
		req.Header.Set(obs.SpanHeader, parent)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return JobView{}, fmt.Errorf("cluster: await %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobView{}, statusErr(resp, http.MethodGet, url)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxEventLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev workerEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return JobView{}, fmt.Errorf("cluster: await %s: bad event: %w", url, err)
		}
		switch ev.Type {
		case "point":
			if onPoint != nil && ev.Point != nil {
				onPoint(*ev.Point)
			}
		case "result":
			if ev.Result == nil {
				return JobView{}, fmt.Errorf("cluster: await %s: result event without view", url)
			}
			return *ev.Result, nil
		}
	}
	if err := sc.Err(); err != nil {
		return JobView{}, fmt.Errorf("cluster: await %s: stream broke: %w", url, err)
	}
	return JobView{}, fmt.Errorf("cluster: await %s: stream ended without a result", url)
}

// Metrics scrapes a server's /v1/metrics exposition as plain text.
// The transport decompresses gzip transparently, so the body is
// always the uncompressed exposition.
func (c *Client) Metrics(ctx context.Context, addr string) (string, error) {
	url := addr + "/v1/metrics"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", fmt.Errorf("cluster: scrape %s: %w", url, err)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return "", fmt.Errorf("cluster: scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", statusErr(resp, http.MethodGet, url)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("cluster: scrape %s: %w", url, err)
	}
	return string(b), nil
}

// JobTrace fetches a job's assembled span tree from
// GET /v1/jobs/{id}/trace — how the CLIs render a timeline after a
// server-side run.
func (c *Client) JobTrace(ctx context.Context, server, id string) (*obs.TraceView, error) {
	var out obs.TraceView
	if err := c.do(ctx, http.MethodGet, server+"/v1/jobs/"+id+"/trace", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// probeHealth is the healthz subset a peer probe reads.
type probeHealth struct {
	Workers int `json:"workers"`
}

// probeTargets is the targets subset a peer probe reads.
type probeTargets struct {
	Targets []struct {
		ID string `json:"id"`
	} `json:"targets"`
}

// Probe interrogates a static peer's /v1/healthz and /v1/targets to
// synthesize the registration a dynamic worker would have sent.
func (c *Client) Probe(ctx context.Context, addr string) (WorkerInfo, error) {
	var h probeHealth
	if err := c.do(ctx, http.MethodGet, addr+"/v1/healthz", nil, &h); err != nil {
		return WorkerInfo{}, err
	}
	var t probeTargets
	if err := c.do(ctx, http.MethodGet, addr+"/v1/targets", nil, &t); err != nil {
		return WorkerInfo{}, err
	}
	info := WorkerInfo{ID: addr, Addr: addr, Capacity: h.Workers}
	for _, tgt := range t.Targets {
		info.Targets = append(info.Targets, tgt.ID)
	}
	return info, nil
}
