// Package paperdata holds the series digitized from the figures of the
// MP-STREAM paper (Nabi & Vanderbauwhede, RAW@IPDPS 2018). Tests, the
// sweep driver and EXPERIMENTS.md compare simulated results against these
// numbers.
//
// Figures 1 and 2 print their values; Figures 3 and 4(a) are unlabeled
// log-scale bars, so only qualitative orderings are recorded for them,
// and Figure 4(b)'s SIMD/CU series are read off the plot (approximate).
package paperdata

import "mpstream/internal/kernel"

// TargetIDs lists the four targets in figure order.
func TargetIDs() []string { return []string{"aocl", "sdaccel", "cpu", "gpu"} }

// Fig1Sizes returns the 9 array sizes of Figure 1(a): 1 KB .. 64 MB in
// x4 steps.
func Fig1Sizes() []int64 {
	sizes := make([]int64, 9)
	for i := range sizes {
		sizes[i] = 1024 << (2 * i)
	}
	return sizes
}

// Fig2Sizes returns the 11 array sizes of Figure 2: 1 KB .. 1 GB.
func Fig2Sizes() []int64 {
	sizes := make([]int64, 11)
	for i := range sizes {
		sizes[i] = 1024 << (2 * i)
	}
	return sizes
}

// VecWidths returns Figure 1(b)'s x axis.
func VecWidths() []int { return []int{1, 2, 4, 8, 16} }

// Fig1a maps target id to the copy bandwidth (GB/s) at each Fig1Sizes
// point: contiguous data, 32-bit words, vec 1, optimal loop management.
var Fig1a = map[string][]float64{
	"aocl":    {0.04, 0.14, 0.63, 1.14, 2.03, 2.23, 2.38, 2.53, 2.45},
	"sdaccel": {0.03, 0.09, 0.21, 0.35, 0.53, 0.64, 0.70, 0.74, 0.76},
	"cpu":     {0.05, 0.19, 0.72, 2.52, 7.44, 18.16, 27.04, 25.24, 25.10},
	"gpu":     {0.14, 0.95, 3.71, 14.74, 50.13, 112.79, 173.72, 204.5, 203.87},
}

// Fig1b maps target id to copy bandwidth (GB/s) at 4 MB for each
// VecWidths entry.
var Fig1b = map[string][]float64{
	"aocl":    {2.53, 4.61, 8.97, 14.85, 15.26},
	"sdaccel": {0.74, 1.41, 2.47, 4.14, 6.27},
	"cpu":     {32.03, 34.58, 37.04, 34.52, 36.03},
	"gpu":     {173.72, 194.30, 201.06, 175.30, 117.37},
}

// Fig2Contig maps target id to the contiguous copy series over Fig2Sizes.
// The FPGA series stop at 64 MB in the figure (9 points).
var Fig2Contig = map[string][]float64{
	"aocl":    {0.0, 0.1, 0.6, 1.1, 2.0, 2.2, 2.4, 2.5, 2.4},
	"sdaccel": {0.0, 0.1, 0.2, 0.4, 0.5, 0.6, 0.7, 0.7, 0.8},
	"cpu":     {0.1, 0.2, 0.7, 2.5, 7.4, 18.2, 27.0, 25.2, 25.1, 26.7, 26.7},
	"gpu":     {0.1, 1.0, 3.7, 14.7, 50.1, 112.8, 173.7, 204.5, 203.9, 216.4, 220.1},
}

// Fig2Strided maps target id to the strided (column-major) copy series
// over Fig2Sizes; FPGA series have 9 points.
var Fig2Strided = map[string][]float64{
	"aocl":    {0.1, 0.2, 0.4, 0.7, 0.8, 1.7, 0.5, 0.4, 0.3},
	"sdaccel": {0.01, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01},
	"cpu":     {0.04, 0.2, 0.4, 0.8, 3.9, 5.6, 5.3, 0.8, 0.8, 0.7, 0.8},
	"gpu":     {0.1, 0.6, 2.5, 7.6, 18.2, 26.6, 29.4, 29.5, 27.3, 9.9, 6.7},
}

// Fig3Order maps target id to loop-management modes from best to worst,
// as Figure 3's bars and the paper's text establish.
var Fig3Order = map[string][3]kernel.LoopMode{
	"aocl":    {kernel.FlatLoop, kernel.NestedLoop, kernel.NDRange},
	"sdaccel": {kernel.NestedLoop, kernel.NDRange, kernel.FlatLoop},
	"cpu":     {kernel.NDRange, kernel.FlatLoop, kernel.NestedLoop},
	"gpu":     {kernel.NDRange, kernel.FlatLoop, kernel.NestedLoop},
}

// Fig4bN is Figure 4(b)'s x axis (vector width, SIMD work-items or
// compute units).
func Fig4bN() []int { return []int{1, 2, 4, 8, 16} }

// Fig4b holds the three AOCL optimization-route series (GB/s). The
// vectorization row repeats Figure 1(b); SIMD and CU values are read off
// the log-scale plot and are approximate.
var Fig4b = map[string][]float64{
	"vector": {2.53, 4.61, 8.97, 14.85, 15.26},
	"simd":   {2.5, 4.4, 7.0, 7.5, 5.0},
	"cu":     {2.5, 3.8, 4.5, 3.2, 2.8},
}

// PeakGBps is the Section IV device table.
var PeakGBps = map[string]float64{
	"cpu":     34,
	"gpu":     336,
	"aocl":    25,
	"sdaccel": 10,
}
