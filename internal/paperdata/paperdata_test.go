package paperdata

import "testing"

func TestSizes(t *testing.T) {
	f1 := Fig1Sizes()
	if len(f1) != 9 || f1[0] != 1024 || f1[8] != 64<<20 {
		t.Errorf("Fig1Sizes = %v", f1)
	}
	f2 := Fig2Sizes()
	if len(f2) != 11 || f2[10] != 1<<30 {
		t.Errorf("Fig2Sizes last = %v", f2[len(f2)-1])
	}
	for i := 1; i < len(f2); i++ {
		if f2[i] != 4*f2[i-1] {
			t.Errorf("sizes must step x4: %v", f2)
		}
	}
}

func TestSeriesLengths(t *testing.T) {
	for _, id := range TargetIDs() {
		if len(Fig1a[id]) != 9 {
			t.Errorf("Fig1a[%s] has %d points, want 9", id, len(Fig1a[id]))
		}
		if len(Fig1b[id]) != len(VecWidths()) {
			t.Errorf("Fig1b[%s] has %d points", id, len(Fig1b[id]))
		}
		if n := len(Fig2Contig[id]); n != 9 && n != 11 {
			t.Errorf("Fig2Contig[%s] has %d points", id, n)
		}
		if n := len(Fig2Strided[id]); n != 9 && n != 11 {
			t.Errorf("Fig2Strided[%s] has %d points", id, n)
		}
		if _, ok := Fig3Order[id]; !ok {
			t.Errorf("Fig3Order missing %s", id)
		}
		if _, ok := PeakGBps[id]; !ok {
			t.Errorf("PeakGBps missing %s", id)
		}
	}
}

func TestSustainedBelowPeak(t *testing.T) {
	for _, id := range TargetIDs() {
		peak := PeakGBps[id]
		for i, v := range Fig1a[id] {
			if v > peak {
				t.Errorf("%s Fig1a[%d] = %v exceeds peak %v", id, i, v, peak)
			}
		}
		for i, v := range Fig1b[id] {
			// The paper's own Fig 1(b) CPU values slightly exceed the
			// nominal 34 GB/s at one point; allow 10%.
			if v > 1.1*peak {
				t.Errorf("%s Fig1b[%d] = %v exceeds peak %v", id, i, v, peak)
			}
		}
	}
}

func TestFig4bSeries(t *testing.T) {
	for _, route := range []string{"vector", "simd", "cu"} {
		if len(Fig4b[route]) != len(Fig4bN()) {
			t.Errorf("Fig4b[%s] has %d points", route, len(Fig4b[route]))
		}
	}
	// The paper's observation: vectorization ends highest; SIMD and CU
	// fall away from their interior peaks at N=16.
	v, s, c := Fig4b["vector"], Fig4b["simd"], Fig4b["cu"]
	if !(v[4] > s[4] && v[4] > c[4]) {
		t.Error("vectorization must win at N=16")
	}
	if !(s[4] < s[3] && c[4] < c[2]) {
		t.Error("SIMD/CU must degrade at N=16")
	}
}

func TestStridedBelowContig(t *testing.T) {
	// At the largest common size, strided is far below contiguous for
	// every target.
	for _, id := range TargetIDs() {
		contig := Fig2Contig[id]
		strided := Fig2Strided[id]
		n := len(strided)
		if contig[n-1] <= strided[n-1] {
			t.Errorf("%s: strided (%v) not below contiguous (%v) at the tail",
				id, strided[n-1], contig[n-1])
		}
	}
}
