module mpstream

go 1.24
