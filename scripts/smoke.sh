#!/usr/bin/env bash
# End-to-end smoke test of the service and fleet layers.
#
# Part 1 (context-aware service): start mpserved, submit an async
# sweep, read at least one NDJSON event from the live event stream,
# cancel the job, and assert it lands in "canceled" with partial
# results.
#
# Part 2 (distributed fleet): boot a coordinator plus two workers, run
# a sharded sweep end-to-end, kill one worker mid-sweep, and assert
# the job still completes with results identical to a single-node
# sweep of the same request.
#
# Part 3 (telemetry): scrape /v1/metrics on the coordinator and the
# surviving worker, asserting the job, fleet-shard, cache and
# simulator counters are nonzero after the runs above.
#
# Part 4 (tracing + federation): boot a replacement worker, run a
# fresh sharded sweep, fetch the coordinator's merged span tree and
# assert it contains worker-origin spans from both workers with a
# nonempty critical path; then scrape /v1/cluster/metrics and assert
# per-worker labeled families for every live worker.
#
# Part 5 (elastic scheduler): boot a fresh 2-worker fleet with
# single-point shards, kill one worker mid-job AND join a replacement
# while the job runs, then assert the job completes, at least one
# shard was stolen (finished on a different worker than first
# assigned), and the merged result is identical to a single-node
# sweep.
#
# Part 6 (baseline drift sentinel): start a server with -data-dir,
# record a baseline from a finished run, check it (pass), restart the
# server on the same -data-dir with a -check-perturb drift drill, and
# assert the persisted baseline now fails its check — with the fail
# verdict visible in the report, mpstream_baseline_checks_total and
# the /v1/baselines/alerts feed.
#
# Run from the repository root; requires curl and python3.
set -euo pipefail

ADDR=127.0.0.1:8774
BASE="http://$ADDR/v1"
BIN=$(mktemp -d)/mpserved
LOG=$(mktemp)
EVENTS=$(mktemp)
JSON='Content-Type: application/json'

go build -o "$BIN" ./cmd/mpserved

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

# wait_healthy <base> <log> waits for /v1/healthz to answer.
wait_healthy() {
  for i in $(seq 1 100); do
    if curl -sf "$1/healthz" >/dev/null 2>&1; then return 0; fi
    if [ "$i" = 100 ]; then echo "server at $1 never became healthy"; cat "$2"; exit 1; fi
    sleep 0.1
  done
}

"$BIN" -addr "$ADDR" >"$LOG" 2>&1 &
PIDS+=($!)
wait_healthy "$BASE" "$LOG"
echo "smoke: mpserved healthy"

# The version flag and endpoint must agree.
"$BIN" -version | python3 -c '
import json, sys
v = json.load(sys.stdin)
assert v["service"] == "mpstream" and len(v["targets"]) == 4, v
print("smoke: -version reports", v["go_version"], "targets", ",".join(v["targets"]))
'

# Non-JSON content types are refused before the body is decoded.
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/run" -H 'Content-Type: text/plain' -d '{"target":"cpu"}')
if [ "$CODE" != 415 ]; then echo "non-JSON content type got $CODE, want 415"; exit 1; fi
echo "smoke: 415 for non-JSON content type"

# Submit a deliberately heavy async sweep (40 points x 16 MB x 5
# repetitions) so the cancel lands mid-grid.
JOB=$(curl -sf "$BASE/sweep" -H "$JSON" -d '{
  "target": "cpu", "op": "copy", "async": true, "timeout_ms": 600000,
  "base": {"array_bytes": 16777216, "ntimes": 5, "verify": false,
           "optimal_loop": true, "type": "int", "vec_width": 1,
           "pattern": {"kind": "contiguous"}},
  "space": {"vec_widths": [1,2,4,8,16], "unrolls": [1,2,4,8],
            "types": ["int","double"]}
}' | python3 -c 'import json,sys; print(json.load(sys.stdin)["job"]["id"])')
echo "smoke: submitted job $JOB"

# Stream events in the background; require at least one NDJSON line.
curl -sN --max-time 30 "$BASE/jobs/$JOB/events" >"$EVENTS" &
CURL=$!
for i in $(seq 1 100); do
  if [ -s "$EVENTS" ]; then break; fi
  if [ "$i" = 100 ]; then echo "no events streamed"; cat "$LOG"; exit 1; fi
  sleep 0.1
done
head -1 "$EVENTS" | python3 -c '
import json, sys
ev = json.loads(sys.stdin.readline())
assert ev["type"] in ("state", "point", "progress", "shard", "result"), ev
print("smoke: first event:", ev["type"], "seq", ev["seq"])
'

# Cancel the job and wait for the canceled terminal state.
curl -sf -X DELETE "$BASE/jobs/$JOB" >/dev/null
echo "smoke: cancel requested"
STATE=""
for i in $(seq 1 300); do
  STATE=$(curl -sf "$BASE/jobs/$JOB" | python3 -c 'import json,sys; print(json.load(sys.stdin)["job"]["status"])')
  case "$STATE" in done|failed|canceled) break ;; esac
  sleep 0.1
done
if [ "$STATE" != canceled ]; then
  echo "job ended in '$STATE', want 'canceled'"
  curl -s "$BASE/jobs/$JOB"
  exit 1
fi

# The canceled view carries a stop reason and a progress snapshot.
curl -sf "$BASE/jobs/$JOB" | python3 -c '
import json, sys
j = json.load(sys.stdin)["job"]
assert j["status"] == "canceled", j["status"]
assert j["stop_reason"] == "canceled", j.get("stop_reason")
p = j["progress"]
assert p["total"] == 40 and p["done"] < 40, p
print("smoke: canceled after", p["done"], "of", p["total"], "points")
'

wait "$CURL" 2>/dev/null || true
# The stream must have carried events before the cancel.
LINES=$(wc -l <"$EVENTS")
if [ "$LINES" -lt 1 ]; then echo "event stream empty"; exit 1; fi
echo "smoke: $LINES events streamed"

# ---------------------------------------------------------------------
# Part 2: coordinator + 2 workers, sharded sweep, worker killed mid-job.
# ---------------------------------------------------------------------
CADDR=127.0.0.1:8781
W1ADDR=127.0.0.1:8782
W2ADDR=127.0.0.1:8783
CBASE="http://$CADDR/v1"
W1BASE="http://$W1ADDR/v1"
CLOG=$(mktemp); W1LOG=$(mktemp); W2LOG=$(mktemp)

"$BIN" -addr "$CADDR" -coordinator >"$CLOG" 2>&1 &
PIDS+=($!)
wait_healthy "$CBASE" "$CLOG"
"$BIN" -addr "$W1ADDR" -worker -join "http://$CADDR" >"$W1LOG" 2>&1 &
PIDS+=($!)
"$BIN" -addr "$W2ADDR" -worker -join "http://$CADDR" >"$W2LOG" 2>&1 &
W2PID=$!
PIDS+=($W2PID)
wait_healthy "$W1BASE" "$W1LOG"

# Wait until the coordinator counts both workers alive.
for i in $(seq 1 100); do
  ALIVE=$(curl -sf "$CBASE/healthz" | python3 -c 'import json,sys; print(json.load(sys.stdin).get("cluster",{}).get("workers_alive",0))')
  if [ "$ALIVE" = 2 ]; then break; fi
  if [ "$i" = 100 ]; then echo "fleet never reached 2 alive workers (have $ALIVE)"; cat "$CLOG"; exit 1; fi
  sleep 0.1
done
echo "smoke: fleet has 2 alive workers"

FLEET_SWEEP='{
  "target": "cpu", "op": "copy", "timeout_ms": 600000,
  "base": {"array_bytes": 16777216, "ntimes": 3, "verify": false,
           "optimal_loop": true, "type": "int", "vec_width": 1,
           "pattern": {"kind": "contiguous"}},
  "space": {"vec_widths": [1,2,4,8], "unrolls": [1,2], "types": ["int","double"]}
}'
FJOB=$(curl -sf "$CBASE/sweep" -H "$JSON" -d "$(echo "$FLEET_SWEEP" | python3 -c 'import json,sys; r=json.load(sys.stdin); r["async"]=True; print(json.dumps(r))')" \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["job"]["id"])')
echo "smoke: submitted fleet sweep $FJOB"

# Kill worker 2 once the sweep is visibly mid-grid, exercising the
# shard retry path. If the fleet finishes first, the kill is a no-op
# and the identity check below still stands.
for i in $(seq 1 300); do
  read -r DONE TOTAL STATE < <(curl -sf "$CBASE/jobs/$FJOB" | python3 -c '
import json,sys
j = json.load(sys.stdin)["job"]
p = j.get("progress") or {}
print(p.get("done",0), p.get("total",0), j["status"])')
  if [ "$STATE" != running ] && [ "$STATE" != queued ]; then break; fi
  if [ "$DONE" -gt 0 ] && [ "$DONE" -lt "$TOTAL" ]; then break; fi
  sleep 0.05
done
kill -9 "$W2PID" 2>/dev/null || true
echo "smoke: killed worker 2 mid-sweep (at $DONE of $TOTAL points)"

FSTATE=""
for i in $(seq 1 600); do
  FSTATE=$(curl -sf "$CBASE/jobs/$FJOB" | python3 -c 'import json,sys; print(json.load(sys.stdin)["job"]["status"])')
  case "$FSTATE" in done|failed|canceled) break ;; esac
  sleep 0.1
done
if [ "$FSTATE" != done ]; then
  echo "fleet sweep ended in '$FSTATE', want 'done'"
  curl -s "$CBASE/jobs/$FJOB"
  cat "$CLOG"
  exit 1
fi
curl -sf "$CBASE/jobs/$FJOB" >/tmp/fleet_sweep.json
python3 -c '
import json
j = json.load(open("/tmp/fleet_sweep.json"))["job"]
p = j["progress"]
assert p["done"] == p["total"] == 16, p
n = len(j["sweep"]["ranked"]) + j["sweep"]["infeasible"]
assert n == 16, n
print("smoke: fleet sweep done,", p["done"], "points merged")
'

# The merged fleet result must be identical to a single-node sweep of
# the same request, run directly against the surviving worker.
curl -sf "$W1BASE/sweep" -H "$JSON" -d "$FLEET_SWEEP" >/tmp/solo_sweep.json
python3 -c '
import json
fleet = json.load(open("/tmp/fleet_sweep.json"))["job"]["sweep"]
solo = json.load(open("/tmp/solo_sweep.json"))["job"]["sweep"]
assert fleet == solo, "fleet and single-node sweeps diverge"
print("smoke: fleet sweep identical to single-node (%d ranked points)" % len(fleet["ranked"]))
'

# ---------------------------------------------------------------------
# Part 3: /v1/metrics — job, shard, cache and sim counters nonzero.
# ---------------------------------------------------------------------
# metric <file> <sample-regex> prints the sample's value or fails.
metric() {
  python3 - "$1" "$2" <<'EOF'
import re, sys
body = open(sys.argv[1]).read()
m = re.search(r"(?m)^%s (\S+)$" % sys.argv[2], body)
assert m, "metric %s missing from scrape" % sys.argv[2]
print(m.group(1))
EOF
}

curl -sf "$CBASE/metrics" >/tmp/coord_metrics.txt
FIN=$(metric /tmp/coord_metrics.txt 'mpstream_jobs_finished_total\{kind="sweep",status="done"\}')
SHARDS=$(metric /tmp/coord_metrics.txt 'mpstream_cluster_shards_total\{state="done"\}')
[ "${FIN%.*}" -ge 1 ] || { echo "coordinator finished-sweep counter $FIN, want >= 1"; exit 1; }
[ "${SHARDS%.*}" -ge 1 ] || { echo "coordinator done-shard counter $SHARDS, want >= 1"; exit 1; }
echo "smoke: coordinator metrics: $FIN sweeps finished, $SHARDS shards done"

curl -sf "$W1BASE/metrics" >/tmp/worker_metrics.txt
ENTRIES=$(metric /tmp/worker_metrics.txt 'mpstream_cache_entries\{cache="run"\}')
EVALS=$(metric /tmp/worker_metrics.txt 'mpstream_sim_evaluations_total')
[ "${ENTRIES%.*}" -ge 1 ] || { echo "worker run-cache entries $ENTRIES, want >= 1"; exit 1; }
[ "${EVALS%.*}" -ge 1 ] || { echo "worker sim evaluations $EVALS, want >= 1"; exit 1; }
echo "smoke: worker metrics: $ENTRIES cached runs, $EVALS simulator evaluations"

# ---------------------------------------------------------------------
# Part 4: span tracing across the fleet + coordinator metrics federation.
# ---------------------------------------------------------------------
# Worker 2 died in part 2; boot a replacement so the fleet is two
# workers again.
W3ADDR=127.0.0.1:8784
W3LOG=$(mktemp)
"$BIN" -addr "$W3ADDR" -worker -worker-id w3 -join "http://$CADDR" >"$W3LOG" 2>&1 &
PIDS+=($!)
wait_healthy "http://$W3ADDR/v1" "$W3LOG"
for i in $(seq 1 100); do
  ALIVE=$(curl -sf "$CBASE/healthz" | python3 -c 'import json,sys; print(json.load(sys.stdin).get("cluster",{}).get("workers_alive",0))')
  if [ "$ALIVE" = 2 ]; then break; fi
  if [ "$i" = 100 ]; then echo "fleet never recovered to 2 alive workers (have $ALIVE)"; cat "$CLOG"; exit 1; fi
  sleep 0.1
done
echo "smoke: fleet recovered to 2 alive workers"

# A fresh sharded sweep (different op, so nothing answers from cache).
TJOB=$(curl -sf "$CBASE/sweep" -H "$JSON" -d '{
  "target": "cpu", "op": "scale", "timeout_ms": 600000,
  "base": {"array_bytes": 4194304, "ntimes": 2, "verify": false,
           "optimal_loop": true, "type": "int", "vec_width": 1,
           "pattern": {"kind": "contiguous"}},
  "space": {"vec_widths": [1,2,4,8], "unrolls": [1,2], "types": ["int","double"]}
}' | python3 -c 'import json,sys; print(json.load(sys.stdin)["job"]["id"])')
echo "smoke: traced fleet sweep $TJOB done"

# The merged span tree: spans from both workers, a nonempty critical
# path, and coverage of the job's wall clock.
curl -sf "$CBASE/jobs/$TJOB/trace" >/tmp/fleet_trace.json
python3 -c '
import json
tv = json.load(open("/tmp/fleet_trace.json"))
workers = [o for o in tv.get("origins", []) if o != "coordinator"]
assert len(workers) >= 2, "trace has worker origins %s, want >= 2" % workers
assert tv.get("critical_path"), "critical path empty"
assert tv["coverage"] >= 0.95, "coverage %.3f < 0.95" % tv["coverage"]
names = set()
def walk(n):
    names.add(n["name"])
    for c in n.get("children", []):
        walk(c)
for r in tv["roots"]:
    walk(r)
assert "shard.execute" in names and "sweep.point" in names, names
print("smoke: trace has %d spans from %s, coverage %.3f, critical path %d steps"
      % (tv["span_count"], "+".join(sorted(workers)), tv["coverage"], len(tv["critical_path"])))
'

# The Chrome export renders each origin as a process row.
curl -sf "$CBASE/jobs/$TJOB/trace?format=chrome" >/tmp/fleet_trace_chrome.json
python3 -c '
import json
ev = json.load(open("/tmp/fleet_trace_chrome.json"))["traceEvents"]
rows = {e["args"]["name"] for e in ev if e["ph"] == "M" and e["name"] == "process_name"}
assert len(rows - {"coordinator"}) >= 2, "chrome process rows %s" % rows
assert any(e["ph"] == "X" for e in ev), "no complete events"
print("smoke: chrome trace has process rows", ",".join(sorted(rows)))
'

# Federation: one scrape on the coordinator covers the whole fleet,
# every sample labeled by worker, with a synthesized up gauge.
curl -sf "$CBASE/cluster/metrics" >/tmp/fed_metrics.txt
python3 -c '
import re
body = open("/tmp/fed_metrics.txt").read()
up = {m.group(1): m.group(2)
      for m in re.finditer(r"(?m)^mpstream_federation_up\{worker=\"([^\"]+)\"\} (\S+)$", body)}
live = [w for w, v in up.items() if v == "1" and w != "coordinator"]
assert len(live) >= 2, "federation_up reports %s" % up
for w in live:
    pat = r"(?m)^mpstream_jobs_finished_total\{worker=\"%s\"," % re.escape(w)
    assert re.search(pat, body), "no per-worker jobs_finished series for %s" % w
assert re.search(r"(?m)^mpstream_jobs_finished_total\{worker=\"coordinator\",", body), \
    "coordinator series missing from federation"
print("smoke: federation covers coordinator + %d live workers" % len(live))
'

# ---------------------------------------------------------------------
# Part 5: work-stealing under churn — kill AND join mid-job.
# ---------------------------------------------------------------------
# A fresh fleet with single-point shards, so the pull queue has many
# shards to reassign when membership changes mid-job.
EADDR=127.0.0.1:8785
W4ADDR=127.0.0.1:8786
W5ADDR=127.0.0.1:8787
W6ADDR=127.0.0.1:8788
EBASE="http://$EADDR/v1"
ELOG=$(mktemp); W4LOG=$(mktemp); W5LOG=$(mktemp); W6LOG=$(mktemp)

"$BIN" -addr "$EADDR" -coordinator -shard-unit 1 >"$ELOG" 2>&1 &
PIDS+=($!)
wait_healthy "$EBASE" "$ELOG"
"$BIN" -addr "$W4ADDR" -worker -worker-id w4 -join "http://$EADDR" >"$W4LOG" 2>&1 &
PIDS+=($!)
"$BIN" -addr "$W5ADDR" -worker -worker-id w5 -join "http://$EADDR" >"$W5LOG" 2>&1 &
W5PID=$!
PIDS+=($W5PID)
wait_healthy "http://$W4ADDR/v1" "$W4LOG"
for i in $(seq 1 100); do
  ALIVE=$(curl -sf "$EBASE/healthz" | python3 -c 'import json,sys; print(json.load(sys.stdin).get("cluster",{}).get("workers_alive",0))')
  if [ "$ALIVE" = 2 ]; then break; fi
  if [ "$i" = 100 ]; then echo "elastic fleet never reached 2 alive workers (have $ALIVE)"; cat "$ELOG"; exit 1; fi
  sleep 0.1
done
echo "smoke: elastic fleet has 2 alive workers"

# A 24-point grid: enough single-point shards that the job is still
# mid-queue when the membership churns.
ELASTIC_SWEEP='{
  "target": "cpu", "op": "copy", "timeout_ms": 600000,
  "base": {"array_bytes": 16777216, "ntimes": 3, "verify": false,
           "optimal_loop": true, "type": "int", "vec_width": 1,
           "pattern": {"kind": "contiguous"}},
  "space": {"vec_widths": [1,2,4,8], "unrolls": [1,2,4], "types": ["int","double"]}
}'
EJOB=$(curl -sf "$EBASE/sweep" -H "$JSON" -d "$(echo "$ELASTIC_SWEEP" | python3 -c 'import json,sys; r=json.load(sys.stdin); r["async"]=True; print(json.dumps(r))')" \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["job"]["id"])')
echo "smoke: submitted elastic sweep $EJOB"

# As soon as the sweep is visibly mid-grid: kill worker 5 (its
# in-flight shards must re-queue and finish elsewhere — stolen) and
# join worker 6 (a mid-job joiner starts pulling immediately).
for i in $(seq 1 300); do
  read -r DONE TOTAL STATE < <(curl -sf "$EBASE/jobs/$EJOB" | python3 -c '
import json,sys
j = json.load(sys.stdin)["job"]
p = j.get("progress") or {}
print(p.get("done",0), p.get("total",0), j["status"])')
  if [ "$STATE" != running ] && [ "$STATE" != queued ]; then break; fi
  if [ "$DONE" -gt 0 ] && [ "$DONE" -lt "$TOTAL" ]; then break; fi
  sleep 0.05
done
kill -9 "$W5PID" 2>/dev/null || true
"$BIN" -addr "$W6ADDR" -worker -worker-id w6 -join "http://$EADDR" >"$W6LOG" 2>&1 &
PIDS+=($!)
echo "smoke: killed worker 5 and joined worker 6 mid-sweep (at $DONE of $TOTAL points)"

ESTATE=""
for i in $(seq 1 600); do
  ESTATE=$(curl -sf "$EBASE/jobs/$EJOB" | python3 -c 'import json,sys; print(json.load(sys.stdin)["job"]["status"])')
  case "$ESTATE" in done|failed|canceled) break ;; esac
  sleep 0.1
done
if [ "$ESTATE" != done ]; then
  echo "elastic sweep ended in '$ESTATE', want 'done'"
  curl -s "$EBASE/jobs/$EJOB"
  cat "$ELOG"
  exit 1
fi
curl -sf "$EBASE/jobs/$EJOB" >/tmp/elastic_sweep.json
python3 -c '
import json
j = json.load(open("/tmp/elastic_sweep.json"))["job"]
p = j["progress"]
assert p["done"] == p["total"] == 24, p
print("smoke: elastic sweep done through the churn,", p["done"], "points merged")
'

# The kill forced re-queued shards onto other workers: stolen > 0.
curl -sf "$EBASE/metrics" >/tmp/elastic_metrics.txt
STOLEN=$(metric /tmp/elastic_metrics.txt 'mpstream_cluster_shards_stolen_total')
[ "${STOLEN%.*}" -ge 1 ] || { echo "stolen-shard counter $STOLEN, want >= 1"; cat "$ELOG"; exit 1; }
echo "smoke: $STOLEN shards stolen across the churn"

# Byte-identity survives the churn: the merged result matches a
# single-node sweep of the same request on the surviving worker.
curl -sf "http://$W4ADDR/v1/sweep" -H "$JSON" -d "$ELASTIC_SWEEP" >/tmp/elastic_solo.json
python3 -c '
import json
fleet = json.load(open("/tmp/elastic_sweep.json"))["job"]["sweep"]
solo = json.load(open("/tmp/elastic_solo.json"))["job"]["sweep"]
assert fleet == solo, "elastic fleet and single-node sweeps diverge"
print("smoke: elastic sweep identical to single-node (%d ranked points)" % len(fleet["ranked"]))
'

# ---------------------------------------------------------------------
# Part 6: baseline drift sentinel — persistence + drift injection.
# ---------------------------------------------------------------------
BADDR=127.0.0.1:8789
BBASE="http://$BADDR/v1"
BDATA=$(mktemp -d)
BLOG1=$(mktemp); BLOG2=$(mktemp)

"$BIN" -addr "$BADDR" -data-dir "$BDATA" >"$BLOG1" 2>&1 &
BPID=$!
PIDS+=($BPID)
wait_healthy "$BBASE" "$BLOG1"

# Measure once, then register the result as a named baseline.
RJOB=$(curl -sf "$BBASE/run" -H "$JSON" -d '{
  "target": "cpu",
  "config": {"array_bytes": 1048576, "ntimes": 3, "verify": true,
             "optimal_loop": true, "type": "int", "vec_width": 4,
             "pattern": {"kind": "contiguous"}}
}' | python3 -c 'import json,sys; print(json.load(sys.stdin)["job"]["id"])')
curl -sf "$BBASE/baselines" -H "$JSON" -d "{\"name\":\"smoke-run\",\"from_job\":\"$RJOB\"}" \
  | python3 -c '
import json, sys
b = json.load(sys.stdin)["baseline"]
assert b["name"] == "smoke-run" and b["kind"] == "run" and b["fingerprint"], b
print("smoke: baseline recorded, fingerprint", b["fingerprint"][:12])
'

# An undrifted check on the deterministic simulator passes.
curl -sf "$BBASE/check" -H "$JSON" -d '{"name":"smoke-run"}' | python3 -c '
import json, sys
j = json.load(sys.stdin)["job"]
assert j["status"] == "done", j["status"]
assert j["check"]["verdict"] == "pass", j["check"]
print("smoke: undrifted check passed (drift ratio %.3f)" % j["check"]["drift_ratio"])
'

# Restart on the same -data-dir with a drift-injection drill: the
# baseline must survive the restart and the perturbed check must fail.
kill "$BPID" 2>/dev/null || true
wait "$BPID" 2>/dev/null || true
"$BIN" -addr "$BADDR" -data-dir "$BDATA" -check-perturb 0.8 >"$BLOG2" 2>&1 &
PIDS+=($!)
wait_healthy "$BBASE" "$BLOG2"

curl -sf "$BBASE/baselines" | python3 -c '
import json, sys
bl = json.load(sys.stdin)["baselines"]
assert len(bl) == 1 and bl[0]["name"] == "smoke-run", bl
print("smoke: baseline survived the restart from -data-dir")
'

curl -sf "$BBASE/check" -H "$JSON" -d '{"name":"smoke-run"}' | python3 -c '
import json, sys
j = json.load(sys.stdin)["job"]
assert j["status"] == "done", j["status"]
rep = j["check"]
assert rep["verdict"] == "fail", rep["verdict"]
assert rep["violations"], rep
assert any("gbps[" in v and "margin" in v for v in rep["violations"]), rep["violations"]
print("smoke: perturbed check failed as it must:", rep["violations"][0])
'

curl -sf "$BBASE/metrics" >/tmp/baseline_metrics.txt
FAILS=$(metric /tmp/baseline_metrics.txt 'mpstream_baseline_checks_total\{verdict="fail"\}')
[ "${FAILS%.*}" -ge 1 ] || { echo "fail-verdict counter $FAILS, want >= 1"; exit 1; }
DRIFT=$(metric /tmp/baseline_metrics.txt 'mpstream_baseline_drift_ratio\{baseline="smoke-run"\}')
echo "smoke: metrics report $FAILS failed checks, drift ratio $DRIFT"

# The alerts feed replays the non-pass verdict as NDJSON.
curl -sf "$BBASE/baselines/alerts" | python3 -c '
import json, sys
lines = [l for l in sys.stdin.read().splitlines() if l.strip()]
assert len(lines) >= 1, "alert feed empty"
a = json.loads(lines[-1])
assert a["report"]["baseline"] == "smoke-run", a
assert a["report"]["verdict"] == "fail", a
print("smoke: alert feed carries the drift (seq %d)" % a["seq"])
'
echo "smoke: OK"
