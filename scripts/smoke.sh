#!/usr/bin/env bash
# End-to-end smoke test of the context-aware service: start mpserved,
# submit an async sweep, read at least one NDJSON event from the live
# event stream, cancel the job, and assert it lands in "canceled" with
# partial results. Run from the repository root; requires curl.
set -euo pipefail

ADDR=127.0.0.1:8774
BASE="http://$ADDR/v1"
BIN=$(mktemp -d)/mpserved
LOG=$(mktemp)
EVENTS=$(mktemp)

go build -o "$BIN" ./cmd/mpserved

"$BIN" -addr "$ADDR" >"$LOG" 2>&1 &
SERVED=$!
cleanup() {
  kill "$SERVED" 2>/dev/null || true
  wait "$SERVED" 2>/dev/null || true
}
trap cleanup EXIT

# Wait for the server to come up.
for i in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if [ "$i" = 100 ]; then echo "mpserved never became healthy"; cat "$LOG"; exit 1; fi
  sleep 0.1
done
echo "smoke: mpserved healthy"

# Submit a deliberately heavy async sweep (40 points x 16 MB x 5
# repetitions) so the cancel lands mid-grid.
JOB=$(curl -sf "$BASE/sweep" -d '{
  "target": "cpu", "op": "copy", "async": true, "timeout_ms": 600000,
  "base": {"array_bytes": 16777216, "ntimes": 5, "verify": false,
           "optimal_loop": true, "type": "int", "vec_width": 1,
           "pattern": {"kind": "contiguous"}},
  "space": {"vec_widths": [1,2,4,8,16], "unrolls": [1,2,4,8],
            "types": ["int","double"]}
}' | python3 -c 'import json,sys; print(json.load(sys.stdin)["job"]["id"])')
echo "smoke: submitted job $JOB"

# Stream events in the background; require at least one NDJSON line.
curl -sN --max-time 30 "$BASE/jobs/$JOB/events" >"$EVENTS" &
CURL=$!
for i in $(seq 1 100); do
  if [ -s "$EVENTS" ]; then break; fi
  if [ "$i" = 100 ]; then echo "no events streamed"; cat "$LOG"; exit 1; fi
  sleep 0.1
done
head -1 "$EVENTS" | python3 -c '
import json, sys
ev = json.loads(sys.stdin.readline())
assert ev["type"] in ("state", "point", "progress", "result"), ev
print("smoke: first event:", ev["type"], "seq", ev["seq"])
'

# Cancel the job and wait for the canceled terminal state.
curl -sf -X DELETE "$BASE/jobs/$JOB" >/dev/null
echo "smoke: cancel requested"
STATE=""
for i in $(seq 1 300); do
  STATE=$(curl -sf "$BASE/jobs/$JOB" | python3 -c 'import json,sys; print(json.load(sys.stdin)["job"]["status"])')
  case "$STATE" in done|failed|canceled) break ;; esac
  sleep 0.1
done
if [ "$STATE" != canceled ]; then
  echo "job ended in '$STATE', want 'canceled'"
  curl -s "$BASE/jobs/$JOB"
  exit 1
fi

# The canceled view carries a stop reason and a progress snapshot.
curl -sf "$BASE/jobs/$JOB" | python3 -c '
import json, sys
j = json.load(sys.stdin)["job"]
assert j["status"] == "canceled", j["status"]
assert j["stop_reason"] == "canceled", j.get("stop_reason")
p = j["progress"]
assert p["total"] == 40 and p["done"] < 40, p
print("smoke: canceled after", p["done"], "of", p["total"], "points")
'

wait "$CURL" 2>/dev/null || true
# The stream must have carried events before the cancel.
LINES=$(wc -l <"$EVENTS")
if [ "$LINES" -lt 1 ]; then echo "event stream empty"; exit 1; fi
echo "smoke: $LINES events streamed"
echo "smoke: OK"
