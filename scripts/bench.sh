#!/usr/bin/env bash
# Benchmark trajectory tool: run the benchmark suite, write a
# machine-readable artifact [{"name", "ns_per_op", "allocs_per_op"}],
# and report deltas against the previous trajectory point.
#
# Usage:
#   ./scripts/bench.sh             # write the next free BENCH_<N>.json
#   ./scripts/bench.sh 1           # write BENCH_1.json (a trajectory point)
#   ./scripts/bench.sh ci.json     # write an explicit file (CI scratch run)
#
# Trajectory points are committed BENCH_<N>.json files; passing an index
# (or letting the script pick the next free one) lands a new point
# instead of overwriting history.
#
# Environment:
#   BENCHTIME  go test -benchtime (default 1x: a smoke-grade artifact —
#              one iteration pins the shape without pretending to be a
#              statistically meaningful measurement; use e.g. 100x for
#              real numbers)
#   BENCH      regex of benchmarks to run (default ".")
#   BASELINE   artifact to diff against (default: the highest-numbered
#              BENCH_<N>.json other than the output)
#   CHECK      non-empty: exit 1 when a watched benchmark's ns/op
#              regresses beyond TOLERANCE vs the baseline
#   WATCH      regex of benchmarks the CHECK gate watches
#              (default "^Benchmark(Fig|Surface)")
#   TOLERANCE  relative ns/op regression band for CHECK — the one place
#              the tolerance is configured (default 0.05)
#
# The delta table goes to stdout and, when the variable is set, is
# appended to $GITHUB_STEP_SUMMARY.
#
# Run from the repository root.
set -euo pipefail

OUT=${1:-}
BENCHTIME=${BENCHTIME:-1x}
BENCH=${BENCH:-.}
RAW=$(mktemp)

go test -run '^$' -bench "$BENCH" -benchtime="$BENCHTIME" -benchmem ./... | tee "$RAW"

OUT="$OUT" BASELINE=${BASELINE:-} CHECK=${CHECK:-} WATCH=${WATCH:-} \
TOLERANCE=${TOLERANCE:-} python3 - "$RAW" <<'EOF'
import glob, json, os, re, sys

def parse(path):
    rows = []
    # Benchmark lines are "name iterations <value unit>..." with the
    # value/unit pairs in any order (custom metrics like "x-paper" may
    # sit between ns/op and the -benchmem pairs), so scan by unit.
    for line in open(path):
        fields = line.split()
        if len(fields) < 4 or not fields[0].startswith("Benchmark"):
            continue
        units = dict(zip(fields[3::2], fields[2::2]))
        if "ns/op" not in units:
            continue
        row = {"name": fields[0], "ns_per_op": float(units["ns/op"])}
        if "allocs/op" in units:
            row["allocs_per_op"] = int(units["allocs/op"])
        rows.append(row)
    assert rows, "no benchmark result lines parsed"
    return rows

def trajectory_index(path):
    m = re.fullmatch(r"BENCH_(\d+)\.json", os.path.basename(path))
    return int(m.group(1)) if m else None

out = os.environ.get("OUT") or ""
if out.isdigit():
    out = "BENCH_%s.json" % out
elif not out:
    taken = [trajectory_index(p) for p in glob.glob("BENCH_*.json")]
    taken = [i for i in taken if i is not None]
    out = "BENCH_%d.json" % (max(taken) + 1 if taken else 0)

rows = parse(sys.argv[1])
with open(out, "w") as f:
    json.dump(rows, f, indent=2)
    f.write("\n")
print("bench: wrote %d results to %s" % (len(rows), out))

baseline = os.environ.get("BASELINE")
if not baseline:
    points = {trajectory_index(p): p for p in glob.glob("BENCH_*.json")}
    points.pop(trajectory_index(out), None)
    points.pop(None, None)
    baseline = points[max(points)] if points else ""
if not baseline or not os.path.exists(baseline):
    print("bench: no baseline artifact to diff against")
    sys.exit(0)

old = {r["name"]: r for r in json.load(open(baseline))}
lines = [
    "## Benchmark deltas: %s vs %s" % (out, baseline),
    "",
    "| benchmark | ns/op | was | Δ | allocs/op | was | Δ |",
    "|---|---|---|---|---|---|---|",
]
def delta(new, was):
    # A missing measurement on either side, or a zero baseline (an
    # alloc-free benchmark), has no meaningful relative delta: print
    # n/a instead of dividing by zero or reporting a bogus -100%.
    if new is None or was is None or not was:
        return "n/a"
    return "%+.1f%%" % (100.0 * (new - was) / was)
for r in rows:
    o = old.get(r["name"])
    if o is None:
        lines.append("| %s | %.0f | — | new | %s | — | |"
                     % (r["name"], r["ns_per_op"], r.get("allocs_per_op", "")))
        continue
    lines.append("| %s | %.0f | %.0f | %s | %s | %s | %s |" % (
        r["name"], r["ns_per_op"], o["ns_per_op"],
        delta(r["ns_per_op"], o["ns_per_op"]),
        r.get("allocs_per_op", ""), o.get("allocs_per_op", ""),
        delta(r.get("allocs_per_op"), o.get("allocs_per_op"))))
table = "\n".join(lines)
print(table)
summary = os.environ.get("GITHUB_STEP_SUMMARY")
if summary:
    with open(summary, "a") as f:
        f.write(table + "\n")

if os.environ.get("CHECK"):
    watch = re.compile(os.environ.get("WATCH") or "^Benchmark(Fig|Surface)")
    tol = float(os.environ.get("TOLERANCE") or "0.05")
    bad = []
    for r in rows:
        o = old.get(r["name"])
        if o is None or not watch.search(r["name"]):
            continue
        if r["ns_per_op"] > o["ns_per_op"] * (1 + tol):
            bad.append("%s: %.0f ns/op vs %.0f (>%+.0f%%)"
                       % (r["name"], r["ns_per_op"], o["ns_per_op"], 100 * tol))
    if bad:
        print("bench: ns/op regression beyond tolerance:", file=sys.stderr)
        for b in bad:
            print("  " + b, file=sys.stderr)
        sys.exit(1)
    print("bench: regression gate passed (tolerance %.0f%%)" % (100 * tol))
EOF
