#!/usr/bin/env bash
# Run every benchmark once and write a machine-readable summary to
# BENCH_0.json: [{"name": ..., "ns_per_op": ..., "allocs_per_op": ...}].
#
# -benchtime=1x keeps this a smoke-grade artifact — one iteration per
# benchmark pins the shape (compiles, runs, allocation profile) without
# pretending to be a statistically meaningful measurement. Pass a
# different -benchtime through BENCHTIME for real numbers:
#
#   ./scripts/bench.sh               # 1 iteration per benchmark
#   BENCHTIME=100x ./scripts/bench.sh
#
# Run from the repository root.
set -euo pipefail

OUT=${OUT:-BENCH_0.json}
BENCHTIME=${BENCHTIME:-1x}
RAW=$(mktemp)

go test -run '^$' -bench . -benchtime="$BENCHTIME" -benchmem ./... | tee "$RAW"

python3 - "$RAW" "$OUT" <<'EOF'
import json, re, sys

rows = []
# Benchmark lines are "name iterations <value unit>..." with the
# value/unit pairs in any order (custom metrics like "x-paper" may sit
# between ns/op and the -benchmem pairs), so scan by unit.
for line in open(sys.argv[1]):
    fields = line.split()
    if len(fields) < 4 or not fields[0].startswith("Benchmark"):
        continue
    units = {}
    for value, unit in zip(fields[2::2], fields[3::2]):
        units[unit] = value
    if "ns/op" not in units:
        continue
    row = {"name": fields[0], "ns_per_op": float(units["ns/op"])}
    if "allocs/op" in units:
        row["allocs_per_op"] = int(units["allocs/op"])
    rows.append(row)

assert rows, "no benchmark result lines parsed"
with open(sys.argv[2], "w") as f:
    json.dump(rows, f, indent=2)
    f.write("\n")
print("bench: wrote %d results to %s" % (len(rows), sys.argv[2]))
EOF
