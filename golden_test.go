// Golden-parity harness: recorded digests of Result/Surface/search
// outputs for every target under representative configurations.
//
// The simulator is deterministic, so each (target, config) pair has
// exactly one correct answer. These tests pin that answer as a SHA-256
// digest of its canonical JSON encoding (core.DigestJSON), keyed by the
// request fingerprint. Any change to the simulator hot path — the dram
// service loops, the request generators, the kernel functional path,
// the surface ladder — must reproduce every digest bit-for-bit, which
// is what lets aggressive optimization land without drift.
//
// Regenerate after an *intentional* model change with:
//
//	go test -run Golden -update
//
// and review the diff of testdata/golden/digests.json like any other
// source change: a digest that moved is a simulation result that moved.
package mpstream_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"mpstream/internal/core"
	"mpstream/internal/device/targets"
	"mpstream/internal/dse"
	"mpstream/internal/dse/search"
	"mpstream/internal/kernel"
	"mpstream/internal/sim/mem"
	"mpstream/internal/surface"
)

var updateGolden = flag.Bool("update", false, "regenerate golden digests")

const goldenPath = "testdata/golden/digests.json"

// goldenEntry is one recorded answer: the fingerprint names the
// question, the digest names the byte-identical answer.
type goldenEntry struct {
	Fingerprint string `json:"fingerprint,omitempty"`
	Digest      string `json:"digest"`
}

var (
	goldenMu   sync.Mutex
	goldenSeen map[string]goldenEntry
)

// checkGolden compares (or, under -update, records) one digest.
func checkGolden(t *testing.T, key, fingerprint, digest string) {
	t.Helper()
	goldenMu.Lock()
	defer goldenMu.Unlock()
	if *updateGolden {
		if goldenSeen == nil {
			goldenSeen = make(map[string]goldenEntry)
		}
		goldenSeen[key] = goldenEntry{Fingerprint: fingerprint, Digest: digest}
		return
	}
	want, ok := loadGolden(t)[key]
	if !ok {
		t.Fatalf("no golden recorded for %q; run: go test -run Golden -update", key)
	}
	if want.Fingerprint != "" && fingerprint != "" && want.Fingerprint != fingerprint {
		t.Fatalf("%s: fingerprint drifted:\n  got  %s\n  want %s\n(the question changed, not just the answer)", key, fingerprint, want.Fingerprint)
	}
	if want.Digest != digest {
		t.Errorf("%s: result digest drifted:\n  got  %s\n  want %s\nthe optimized path no longer reproduces the recorded result byte-for-byte", key, digest, want.Digest)
	}
}

var (
	goldenLoadOnce sync.Once
	goldenLoaded   map[string]goldenEntry
)

func loadGolden(t *testing.T) map[string]goldenEntry {
	t.Helper()
	goldenLoadOnce.Do(func() {
		b, err := os.ReadFile(goldenPath)
		if err != nil {
			return
		}
		_ = json.Unmarshal(b, &goldenLoaded)
	})
	if goldenLoaded == nil {
		t.Fatalf("missing %s; run: go test -run Golden -update", goldenPath)
	}
	return goldenLoaded
}

// TestMain flushes recorded digests after -update runs.
func TestMain(m *testing.M) {
	code := m.Run()
	if *updateGolden && goldenSeen != nil {
		// Keys sort for a stable, reviewable file.
		keys := make([]string, 0, len(goldenSeen))
		for k := range goldenSeen {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]goldenEntry, len(goldenSeen))
		for _, k := range keys {
			ordered[k] = goldenSeen[k]
		}
		b, err := json.MarshalIndent(ordered, "", "  ")
		if err == nil {
			err = os.MkdirAll(filepath.Dir(goldenPath), 0o755)
		}
		if err == nil {
			err = os.WriteFile(goldenPath, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "golden update failed:", err)
			code = 1
		} else {
			fmt.Printf("golden: wrote %d digests to %s\n", len(goldenSeen), goldenPath)
		}
	}
	os.Exit(code)
}

// goldenRunConfigs are the representative benchmark configurations:
// each exercises a distinct hot-path shape (contiguous vs strided vs
// column-major walks, int vs double, scalar vs vectorized, one- vs
// two-input kernels) at an array size small enough to simulate exactly.
func goldenRunConfigs() map[string]core.Config {
	base := core.DefaultConfig()
	base.ArrayBytes = 1 << 20
	base.NTimes = 2

	contig := base

	strided := base
	strided.Pattern = mem.StridedPattern(8)
	strided.Ops = []kernel.Op{kernel.Copy, kernel.Triad}

	colmajor := base
	colmajor.Pattern = mem.ColMajorPattern()
	colmajor.Ops = []kernel.Op{kernel.Scale}

	vec := base
	vec.Type = kernel.Float64
	vec.VecWidth = 4
	vec.Ops = []kernel.Op{kernel.Add, kernel.Triad}

	return map[string]core.Config{
		"contig":   contig,
		"strided8": strided,
		"colmajor": colmajor,
		"vec4-f64": vec,
	}
}

// TestGoldenRun pins core.Run for every target x representative config.
func TestGoldenRun(t *testing.T) {
	cfgs := goldenRunConfigs()
	names := sortedKeys(cfgs)
	for _, id := range targets.IDs() {
		for _, name := range names {
			cfg := cfgs[name]
			t.Run(id+"/"+name, func(t *testing.T) {
				dev, err := targets.ByID(id)
				if err != nil {
					t.Fatal(err)
				}
				res, err := core.Run(dev, cfg)
				if err != nil {
					t.Fatal(err)
				}
				checkGolden(t, "run/"+id+"/"+name, cfg.Fingerprint(id), core.DigestResult(res))
			})
		}
	}
}

// goldenSurfaceConfig is a small-but-real surface: two patterns, two
// ratios, a three-rung ladder.
func goldenSurfaceConfig() surface.Config {
	return surface.Config{
		Patterns:   []mem.Pattern{mem.ContiguousPattern(), mem.StridedPattern(16)},
		RWRatios:   []float64{1, 0.5},
		Rates:      []float64{0.25, 0.75, 1.2},
		ArrayBytes: 4 << 20,
		WindowTxns: 1024,
		ProbeHops:  64,
	}
}

// TestGoldenSurface pins the bandwidth-latency surface per target, and
// with it the whole ServiceLoaded/issue open-loop path.
func TestGoldenSurface(t *testing.T) {
	cfg := goldenSurfaceConfig()
	for _, id := range targets.IDs() {
		t.Run(id, func(t *testing.T) {
			dev, err := targets.ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			s, err := core.RunSurface(dev, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "surface/"+id, "", core.DigestJSON(s))
		})
	}
}

// TestGoldenSweep pins a size sweep (the Figure 1(a)/2 shape): several
// exact-simulation sizes plus one large enough to take the sampled
// path, per target.
func TestGoldenSweep(t *testing.T) {
	base := core.DefaultConfig()
	base.NTimes = 2
	base.Ops = []kernel.Op{kernel.Copy}
	sizes := []int64{1 << 18, 1 << 20, 64 << 20}
	for _, id := range targets.IDs() {
		t.Run(id, func(t *testing.T) {
			dev, err := targets.ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			pts := dse.SweepSizes(dev, base, sizes)
			results := make([]*core.Result, 0, len(pts))
			for _, p := range pts {
				if p.Err != nil {
					t.Fatal(p.Err)
				}
				results = append(results, p.Result)
			}
			checkGolden(t, "sweep/"+id, "", core.DigestJSON(results))
		})
	}
}

// TestGoldenOptimize pins a seeded stochastic search: the RNG walk, the
// dedup engine and every simulated evaluation must all reproduce.
func TestGoldenOptimize(t *testing.T) {
	base := core.DefaultConfig()
	base.ArrayBytes = 1 << 20
	base.NTimes = 2
	space := dse.Space{
		VecWidths: []int{1, 4, 16},
		Loops:     []kernel.LoopMode{kernel.NDRange, kernel.FlatLoop},
		Unrolls:   []int{1, 4},
	}
	opts := search.Options{Strategy: "anneal", Budget: 8, Seed: 42}
	for _, id := range []string{"aocl", "cpu"} {
		t.Run(id, func(t *testing.T) {
			dev, err := targets.ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			res, err := search.Run(dev, base, space, kernel.Triad, opts)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "optimize/"+id, "", core.DigestJSON(res))
		})
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
